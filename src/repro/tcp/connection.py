"""TCP connection state machine.

One :class:`TcpConnection` is a transmission control block: RFC 793 states,
send/receive sequence variables, buffers, timers and the segment
send/receive engines.  Connections never talk to the network directly —
every outgoing segment goes through the owning
:class:`~repro.tcp.layer.TcpLayer`, which hands it to the host, which hands
it to the failover bridge when one is installed.  The connection therefore
has no idea whether it is replicated, which is precisely the transparency
property the paper claims for server applications.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, List, Optional, Tuple

from repro.net.addresses import Ipv4Address
from repro.sim.process import Event
from repro.tcp.buffers import ReceiveBuffer, SendBuffer
from repro.tcp.congestion import CongestionControl
from repro.tcp.rto import RtoEstimator
from repro.tcp.segment import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_PSH,
    FLAG_RST,
    FLAG_SYN,
    TcpSegment,
)
from repro.tcp.seqnum import (
    seq_add,
    seq_between,
    seq_ge,
    seq_gt,
    seq_in_window,
    seq_le,
    seq_lt,
    seq_max,
    seq_sub,
)


class TcpState(enum.Enum):
    CLOSED = "CLOSED"
    SYN_SENT = "SYN_SENT"
    SYN_RCVD = "SYN_RCVD"
    ESTABLISHED = "ESTABLISHED"
    FIN_WAIT_1 = "FIN_WAIT_1"
    FIN_WAIT_2 = "FIN_WAIT_2"
    CLOSE_WAIT = "CLOSE_WAIT"
    CLOSING = "CLOSING"
    LAST_ACK = "LAST_ACK"
    TIME_WAIT = "TIME_WAIT"


DATA_STATES = {
    TcpState.ESTABLISHED,
    TcpState.FIN_WAIT_1,
    TcpState.FIN_WAIT_2,
}

SEND_STATES = {
    TcpState.ESTABLISHED,
    TcpState.CLOSE_WAIT,
    TcpState.FIN_WAIT_1,
    TcpState.CLOSING,
    TcpState.LAST_ACK,
}


class ConnectionReset(ConnectionError):
    """The peer reset the connection (or it was aborted locally)."""


# States a connection can be exported from / installed in.  Mid-teardown
# states are excluded: once our FIN is in flight the stream is closing
# and a joining replica gains nothing from adopting it.
TRANSFERABLE_STATES = (TcpState.ESTABLISHED, TcpState.CLOSE_WAIT)


@dataclasses.dataclass
class TcpSnapshot:
    """A portable image of one established TCB (PnO-TCP-style transfer).

    All send-side sequence numbers are expressed in the *peer-visible*
    numbering: the exporter maps them through the bridge's Δseq (if any)
    so the snapshot can be installed on a different replica whose own ISS
    never existed on this connection.  Receive-side numbers are already
    the peer's and need no mapping.
    """

    local_port: int
    remote_ip: "Ipv4Address"
    remote_port: int
    state: str  # TcpState value
    failover: bool
    # Send side (peer-visible numbering).
    iss: int
    snd_una: int
    snd_max: int
    snd_wnd: int
    send_data: bytes
    send_next_offset: int
    fin_pending: bool
    fin_seq: Optional[int]
    fin_in_flight: bool
    fin_acked: bool
    # Receive side.
    irs: int
    rcv_nxt: int
    recv_pending: bytes  # in-order bytes the application has not read yet
    recv_window: int
    fin_received: bool
    # Sizing / options.
    mss: int
    send_capacity: int
    recv_capacity: int
    min_rto: float
    # Application stream positions, for warm-syncing the joiner's app:
    # bytes the application has written / consumed on this connection.
    stream_written: int = 0
    stream_read: int = 0


class TcpConnection:
    """One TCP endpoint (a TCB plus its engines)."""

    MAX_RETRANSMITS = 12
    SYN_MAX_RETRANSMITS = 6

    #: RFC 5961 §10: challenge ACKs are rate-limited per connection so an
    #: off-path attacker cannot use them as an unbounded probe oracle (the
    #: CVE-2016-5696 side channel was a *shared* challenge counter; a
    #: per-connection budget both bounds the traffic and starves the
    #: attacker's in-window/out-of-window signal after a few probes).
    CHALLENGE_LIMIT = 3
    CHALLENGE_WINDOW = 1.0

    #: RFC 1191 minimum: never honour an ICMP frag-needed quoting a path
    #: MTU below the IPv4 minimum reassembly size.  Off-path PMTUD attacks
    #: (RFC 5927) advertise tiny MTUs to collapse throughput.
    MIN_PMTU = 576

    def __init__(
        self,
        layer: "TcpLayer",  # noqa: F821 - forward ref, avoids import cycle
        local_ip: Ipv4Address,
        local_port: int,
        remote_ip: Ipv4Address,
        remote_port: int,
        mss: int = 1460,
        send_buffer_size: int = 65536,
        recv_buffer_size: int = 65536,
        initial_rto: float = 1.0,
        min_rto: float = 0.2,
        msl: float = 5.0,
        delayed_ack_time: float = 0.2,
        failover: bool = False,
    ):
        self.layer = layer
        self.sim = layer.sim
        self.tracer = layer.tracer
        self.local_ip = local_ip
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.failover = failover
        self.state = TcpState.CLOSED
        self.mss_config = mss
        self.mss = mss  # effective, lowered by the peer's MSS option
        self.msl = msl
        self.delayed_ack_time = delayed_ack_time

        self.iss = 0
        self.irs = 0
        self.snd_una = 0
        self.snd_max = 0  # highest seq_end ever sent
        self.snd_wnd = 0
        self.send_buffer = SendBuffer(send_buffer_size)
        self.recv_buffer: Optional[ReceiveBuffer] = None
        self.recv_buffer_size = recv_buffer_size

        self.rto = RtoEstimator(initial_rto=initial_rto, min_rto=min_rto)
        self.cc = CongestionControl(mss)

        # FIN bookkeeping (our side).
        self._fin_pending = False  # application closed the send side
        self._fin_seq: Optional[int] = None
        self._fin_in_flight = False
        self._fin_acked = False
        # FIN bookkeeping (their side).
        self.fin_received = False

        self._rtx_timer = None
        self._delack_timer = None
        self._persist_timer = None
        self._time_wait_timer = None
        self._persist_backoff = 1
        self._rtx_count = 0
        self._rtt_probe: Optional[Tuple[int, float]] = None
        self._total_written = 0
        self._segs_since_ack = 0

        self.established_event = Event(self.sim, name=f"{self}.established")
        # terminated: the four-way handshake finished (TIME_WAIT counts);
        # closed: the TCB is destroyed (after 2*MSL for the active closer).
        self.terminated_event = Event(self.sim, name=f"{self}.terminated")
        self.closed_event = Event(self.sim, name=f"{self}.closed")
        self._readable_waiters: List[Event] = []
        self._writable_waiters: List[Event] = []
        self.reset_received = False

        # RFC 5961 challenge-ACK throttle state.
        self.challenge_acks_sent = 0
        self.challenge_acks_suppressed = 0
        self._challenge_window_start = -1.0
        self._challenge_in_window = 0

        # Statistics.
        self.bytes_sent = 0
        self.bytes_received = 0
        self.segments_sent = 0
        self.segments_received = 0
        self.retransmissions = 0

    # ------------------------------------------------------------------
    # identification helpers
    # ------------------------------------------------------------------

    @property
    def key(self) -> Tuple[Ipv4Address, int, Ipv4Address, int]:
        return (self.local_ip, self.local_port, self.remote_ip, self.remote_port)

    @property
    def snd_nxt(self) -> int:
        """Next sequence number a pure ACK should carry (highest sent)."""
        return self.snd_max

    @property
    def rcv_nxt(self) -> int:
        if self.recv_buffer is None:
            return 0
        return self.recv_buffer.rcv_nxt

    def __repr__(self) -> str:
        return (
            f"Tcp[{self.local_ip}:{self.local_port}->"
            f"{self.remote_ip}:{self.remote_port} {self.state.value}]"
        )

    # ------------------------------------------------------------------
    # opening
    # ------------------------------------------------------------------

    def open_active(self) -> None:
        """Client side: send SYN."""
        if self.state is not TcpState.CLOSED:
            raise ValueError(f"open_active requires a fresh connection, not {self}")
        self.iss = self.layer.choose_iss()
        self.snd_una = self.iss
        self.snd_max = self.iss
        self.state = TcpState.SYN_SENT
        self._send_syn(with_ack=False)
        self._start_rtx_timer()

    def open_passive(self, syn: TcpSegment) -> None:
        """Server side: accept SYN, answer SYN-ACK."""
        if self.state is not TcpState.CLOSED:
            raise ValueError(f"open_passive requires a fresh connection, not {self}")
        self.iss = self.layer.choose_iss()
        self.snd_una = self.iss
        self.snd_max = self.iss
        self.irs = syn.seq
        self.recv_buffer = ReceiveBuffer(
            seq_add(self.irs, 1), capacity=self.recv_buffer_size
        )
        if syn.mss_option is not None:
            self.mss = min(self.mss_config, syn.mss_option)
            self.cc.mss = self.mss
        self.snd_wnd = syn.window
        self.state = TcpState.SYN_RCVD
        self._send_syn(with_ack=True)
        self._start_rtx_timer()

    def _send_syn(self, with_ack: bool) -> None:
        flags = FLAG_SYN | (FLAG_ACK if with_ack else 0)
        segment = TcpSegment(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=self.iss,
            ack=self.rcv_nxt if with_ack else 0,
            flags=flags,
            window=self.recv_buffer.window if self.recv_buffer else self.recv_buffer_size_clamped(),
            mss_option=self.mss_config,
        )
        self.snd_max = seq_max(self.snd_max, segment.seq_end)
        self._transmit(segment)

    def recv_buffer_size_clamped(self) -> int:
        return min(0xFFFF, self.recv_buffer_size)

    # ------------------------------------------------------------------
    # application interface
    # ------------------------------------------------------------------

    def write(self, data: bytes) -> int:
        """Accept bytes into the send buffer; returns the count accepted."""
        if self.reset_received:
            raise ConnectionReset(f"{self}: connection reset")
        if self._fin_pending or self.state in (
            TcpState.FIN_WAIT_1,
            TcpState.FIN_WAIT_2,
            TcpState.CLOSING,
            TcpState.LAST_ACK,
            TcpState.TIME_WAIT,
            TcpState.CLOSED,
        ):
            raise ConnectionError(f"{self}: send side already closed")
        accepted = self.send_buffer.write(data)
        self._total_written += accepted
        if accepted and self.state in SEND_STATES:
            self._output()
        return accepted

    def read(self, max_bytes: int) -> bytes:
        """Non-blocking read; empty bytes means no data available now."""
        if self.recv_buffer is None:
            return b""
        data = self.recv_buffer.read(max_bytes)
        return data

    @property
    def eof(self) -> bool:
        """True once the peer's FIN was consumed and all data read."""
        return (
            self.fin_received
            and self.recv_buffer is not None
            and self.recv_buffer.readable_bytes == 0
        )

    def close(self) -> None:
        """Close the send direction (half-close); receive stays open."""
        if self._fin_pending or self.state == TcpState.CLOSED:
            return
        self._fin_pending = True
        if self.state in SEND_STATES or self.state in (
            TcpState.SYN_RCVD,
        ):
            self._maybe_send_fin()

    def abort(self) -> None:
        """Send RST and destroy the connection."""
        if self.state not in (TcpState.CLOSED,):
            rst = TcpSegment(
                src_port=self.local_port,
                dst_port=self.remote_port,
                seq=self.snd_max,
                ack=self.rcv_nxt,
                flags=FLAG_RST | FLAG_ACK,
                window=0,
            )
            self._transmit(rst)
        self._destroy(error=ConnectionReset(f"{self}: aborted locally"))

    def wait_readable(self) -> Event:
        """Event that fires when data/EOF/reset is available."""
        event = Event(self.sim, name=f"{self}.readable")
        if self._readable_now():
            event.succeed()
        else:
            self._readable_waiters.append(event)
        return event

    def wait_writable(self) -> Event:
        """Event that fires when the send buffer has space (or on error)."""
        event = Event(self.sim, name=f"{self}.writable")
        if self.send_buffer.free_space > 0 or self.reset_received:
            event.succeed()
        else:
            self._writable_waiters.append(event)
        return event

    def _readable_now(self) -> bool:
        return (
            (self.recv_buffer is not None and self.recv_buffer.readable_bytes > 0)
            or self.fin_received
            or self.reset_received
        )

    def _wake_readers(self) -> None:
        if not self._readable_now():
            return
        waiters, self._readable_waiters = self._readable_waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed()

    def _wake_writers(self) -> None:
        if self.send_buffer.free_space <= 0 and not self.reset_received:
            return
        waiters, self._writable_waiters = self._writable_waiters, []
        for event in waiters:
            if not event.triggered:
                event.succeed()

    # ------------------------------------------------------------------
    # segment transmission engine
    # ------------------------------------------------------------------

    def _transmit(self, segment: TcpSegment) -> None:
        self.segments_sent += 1
        self.layer.send_segment(segment, self.local_ip, self.remote_ip)

    def _data_seq(self, buffer_offset: int) -> int:
        """Sequence number of the send-buffer byte at ``buffer_offset``."""
        return seq_add(self.snd_una, buffer_offset)

    def _in_flight_seq_space(self) -> int:
        flight = self.send_buffer.in_flight
        if self._fin_in_flight:
            flight += 1
        return flight

    def _output(self) -> None:
        """Transmit as much buffered data as windows allow."""
        if self.state not in SEND_STATES:
            return
        usable = self.cc.window(self.snd_wnd) - self._in_flight_seq_space()
        sent_any = False
        while self.send_buffer.unsent_bytes > 0 and usable > 0:
            chunk = min(self.mss, self.send_buffer.unsent_bytes, usable)
            payload = self.send_buffer.peek_unsent(chunk)
            seq = self._data_seq(self.send_buffer.next_offset)
            flags = FLAG_ACK
            last_of_buffer = chunk == self.send_buffer.unsent_bytes
            if last_of_buffer:
                flags |= FLAG_PSH
            fin_now = (
                last_of_buffer
                and self._fin_pending
                and not self._fin_in_flight
                and usable > chunk
            )
            if fin_now:
                flags |= FLAG_FIN
            segment = TcpSegment(
                src_port=self.local_port,
                dst_port=self.remote_port,
                seq=seq,
                ack=self.rcv_nxt,
                flags=flags,
                window=self.recv_buffer.window if self.recv_buffer else 0,
                payload=payload,
            )
            first_transmission = seq_ge(seq, self.snd_max)
            self.send_buffer.mark_sent(chunk)
            if fin_now:
                self._register_fin_sent()
            self.bytes_sent += chunk
            self.snd_max = seq_max(self.snd_max, segment.seq_end)
            if first_transmission and self._rtt_probe is None:
                self._rtt_probe = (segment.seq_end, self.sim.now)
            self._transmit(segment)
            self._ack_was_piggybacked()
            usable -= chunk + (1 if fin_now else 0)
            sent_any = True
        if (
            self.send_buffer.unsent_bytes == 0
            and self._fin_pending
            and not self._fin_in_flight
            and self.state in SEND_STATES
        ):
            self._send_fin_only()
            sent_any = True
        if sent_any:
            self._start_rtx_timer()
        if (
            self.snd_wnd == 0
            and self.cc.window(1) > 0
            and (self.send_buffer.unsent_bytes > 0 or
                 (self._fin_pending and not self._fin_in_flight))
            and self._persist_timer is None
        ):
            self._start_persist_timer()

    def _register_fin_sent(self) -> None:
        self._fin_in_flight = True
        if self._fin_seq is None:
            self._fin_seq = self._data_seq(len(self.send_buffer))
        if self.state == TcpState.ESTABLISHED:
            self.state = TcpState.FIN_WAIT_1
        elif self.state == TcpState.CLOSE_WAIT:
            self.state = TcpState.LAST_ACK

    def _maybe_send_fin(self) -> None:
        if self.send_buffer.unsent_bytes == 0 and not self._fin_in_flight:
            if self.state in SEND_STATES or self.state == TcpState.SYN_RCVD:
                if self.state == TcpState.SYN_RCVD:
                    # FIN allowed once the handshake completes; defer.
                    return
                self._send_fin_only()
                self._start_rtx_timer()
        else:
            self._output()

    def _send_fin_only(self) -> None:
        # A retransmitted FIN keeps its original slot even if snd_una has
        # since moved (e.g. the covering ACK was processed after an RTO).
        if self._fin_seq is not None:
            seq = self._fin_seq
        else:
            seq = self._data_seq(len(self.send_buffer))
        segment = TcpSegment(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=seq,
            ack=self.rcv_nxt,
            flags=FLAG_FIN | FLAG_ACK,
            window=self.recv_buffer.window if self.recv_buffer else 0,
        )
        self._register_fin_sent()
        self.snd_max = seq_max(self.snd_max, segment.seq_end)
        self._transmit(segment)
        self._ack_was_piggybacked()

    def _send_ack_now(self) -> None:
        if self.recv_buffer is None:
            return
        segment = TcpSegment(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=self.snd_max,
            ack=self.rcv_nxt,
            flags=FLAG_ACK,
            window=self.recv_buffer.window,
        )
        self._transmit(segment)
        self._ack_was_piggybacked()

    def _ack_was_piggybacked(self) -> None:
        self._segs_since_ack = 0
        if self._delack_timer is not None:
            self._delack_timer.cancel()
            self._delack_timer = None

    def _schedule_ack(self) -> None:
        """Delayed-ACK policy: every second segment, else after a timer."""
        self._segs_since_ack += 1
        if self._segs_since_ack >= 2:
            self._send_ack_now()
            return
        if self._delack_timer is None:
            self._delack_timer = self.sim.schedule(
                self.delayed_ack_time, self._delack_fired
            )

    def _delack_fired(self) -> None:
        self._delack_timer = None
        if self.state != TcpState.CLOSED:
            self._send_ack_now()

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------

    def _start_rtx_timer(self) -> None:
        if self._rtx_timer is not None:
            return
        self._rtx_timer = self.sim.schedule(self.rto.rto, self._rtx_fired)

    def _restart_rtx_timer(self) -> None:
        if self._rtx_timer is not None:
            self._rtx_timer.cancel()
            self._rtx_timer = None
        if self._needs_rtx_timer():
            self._start_rtx_timer()

    def _needs_rtx_timer(self) -> bool:
        if self.state in (TcpState.SYN_SENT, TcpState.SYN_RCVD):
            return True
        return self._in_flight_seq_space() > 0

    def _rtx_fired(self) -> None:
        self._rtx_timer = None
        if self.state == TcpState.CLOSED:
            return
        if not self._needs_rtx_timer():
            return
        self._rtx_count += 1
        limit = (
            self.SYN_MAX_RETRANSMITS
            if self.state in (TcpState.SYN_SENT, TcpState.SYN_RCVD)
            else self.MAX_RETRANSMITS
        )
        if self._rtx_count > limit:
            self.tracer.emit(self.sim.now, "tcp.give_up", self.layer.node_name,
                             conn=str(self))
            self._destroy(error=ConnectionError(f"{self}: too many retransmissions"))
            return
        self.retransmissions += 1
        self.layer._m_rtx.inc()
        self.rto.on_timeout()
        self._rtt_probe = None  # Karn's rule
        self.tracer.emit(
            self.sim.now, "tcp.rtx", self.layer.node_name,
            conn=str(self), state=self.state.value, count=self._rtx_count,
        )
        if self.state == TcpState.SYN_SENT:
            self._send_syn(with_ack=False)
        elif self.state == TcpState.SYN_RCVD:
            self._send_syn(with_ack=True)
        else:
            self.cc.on_timeout(self.send_buffer.in_flight)
            self._fin_in_flight = False
            self.send_buffer.rewind()
            self._output()
            if self._in_flight_seq_space() == 0 and self._fin_pending:
                # FIN-only retransmission when there is no data left.
                self._maybe_send_fin()
        self._start_rtx_timer()

    def _start_persist_timer(self) -> None:
        interval = min(60.0, self.rto.rto * self._persist_backoff)
        self._persist_timer = self.sim.schedule(interval, self._persist_fired)

    def _persist_fired(self) -> None:
        self._persist_timer = None
        if self.state not in SEND_STATES or self.snd_wnd > 0:
            self._persist_backoff = 1
            return
        self._persist_backoff = min(self._persist_backoff * 2, 16)
        probe = self.send_buffer.peek_at(self.send_buffer.next_offset, 1)
        if probe:
            segment = TcpSegment(
                src_port=self.local_port,
                dst_port=self.remote_port,
                seq=self._data_seq(self.send_buffer.next_offset),
                ack=self.rcv_nxt,
                flags=FLAG_ACK,
                window=self.recv_buffer.window if self.recv_buffer else 0,
                payload=probe,
            )
            self.tracer.emit(self.sim.now, "tcp.zwp", self.layer.node_name, conn=str(self))
            # The probe byte occupies sequence space: record it so the
            # receiver's ACK of the probe is acceptable and carries the
            # reopened window back to us.
            self.snd_max = seq_max(self.snd_max, segment.seq_end)
            self._transmit(segment)
        self._start_persist_timer()

    def _cancel_all_timers(self) -> None:
        for timer_name in ("_rtx_timer", "_delack_timer", "_persist_timer", "_time_wait_timer"):
            timer = getattr(self, timer_name)
            if timer is not None:
                timer.cancel()
                setattr(self, timer_name, None)

    # ------------------------------------------------------------------
    # segment arrival
    # ------------------------------------------------------------------

    def segment_arrived(self, segment: TcpSegment, src_ip: Ipv4Address) -> None:
        self.segments_received += 1
        if not segment.checksum_ok(src_ip, self.local_ip):
            self.tracer.emit(
                self.sim.now, "tcp.bad_checksum", self.layer.node_name,
                conn=str(self), seg=repr(segment),
            )
            return
        if segment.rst:
            self._handle_rst(segment)
            return
        handler = {
            TcpState.SYN_SENT: self._arrival_syn_sent,
            TcpState.SYN_RCVD: self._arrival_syn_rcvd,
            TcpState.TIME_WAIT: self._arrival_time_wait,
        }.get(self.state, self._arrival_synchronized)
        handler(segment)

    def _handle_rst(self, segment: TcpSegment) -> None:
        if self.state == TcpState.SYN_SENT:
            if segment.has_ack and segment.ack == seq_add(self.iss, 1):
                self.tracer.emit(
                    self.sim.now, "tcp.rst_received", self.layer.node_name,
                    conn=str(self), seq=segment.seq,
                )
                self._destroy(error=ConnectionReset(f"{self}: reset by peer"))
            return
        # RFC 5961 §3.2: only an exact-match RST (seq == rcv_nxt) tears the
        # connection down.  An in-window RST draws a challenge ACK — a
        # genuine peer answers it with an exact-match RST on the next round
        # trip, while a blind attacker would have to hit one sequence
        # number in 2^32, not one window in 2^32.
        if segment.seq == self.rcv_nxt:
            self.tracer.emit(
                self.sim.now, "tcp.rst_received", self.layer.node_name,
                conn=str(self), seq=segment.seq,
            )
            self._destroy(error=ConnectionReset(f"{self}: reset by peer"))
            return
        window = self.recv_buffer.window if self.recv_buffer else 0
        if window > 0 and seq_in_window(self.rcv_nxt, segment.seq, window):
            self._send_challenge_ack("in-window-rst")
        # Out-of-window RSTs are dropped silently.

    def _send_challenge_ack(self, reason: str) -> None:
        """RFC 5961 challenge ACK: re-assert our state, rate-limited."""
        if self.sim.now - self._challenge_window_start >= self.CHALLENGE_WINDOW:
            self._challenge_window_start = self.sim.now
            self._challenge_in_window = 0
        if self._challenge_in_window >= self.CHALLENGE_LIMIT:
            self.challenge_acks_suppressed += 1
            return
        self._challenge_in_window += 1
        self.challenge_acks_sent += 1
        self.layer._m_challenge.inc()
        self.tracer.emit(
            self.sim.now, "tcp.challenge_ack", self.layer.node_name,
            conn=str(self), reason=reason,
        )
        self._send_ack_now()

    def _arrival_syn_sent(self, segment: TcpSegment) -> None:
        if not (segment.syn and segment.has_ack):
            return
        if segment.ack != seq_add(self.iss, 1):
            return
        self.irs = segment.seq
        self.recv_buffer = ReceiveBuffer(
            seq_add(self.irs, 1), capacity=self.recv_buffer_size
        )
        if segment.mss_option is not None:
            self.mss = min(self.mss_config, segment.mss_option)
            self.cc.mss = self.mss
        self.snd_una = seq_add(self.iss, 1)
        self.snd_max = seq_max(self.snd_max, self.snd_una)
        self.snd_wnd = segment.window
        self.state = TcpState.ESTABLISHED
        self._rtx_count = 0
        self._restart_rtx_timer()
        self._send_ack_now()
        if not self.established_event.triggered:
            self.established_event.succeed(self)
        self._output()

    def _arrival_syn_rcvd(self, segment: TcpSegment) -> None:
        if segment.syn and segment.seq == self.irs:
            # Duplicate SYN: our SYN-ACK was lost; resend it.
            self._send_syn(with_ack=True)
            return
        if not segment.has_ack:
            return
        if segment.ack != seq_add(self.iss, 1):
            return
        self.snd_una = seq_add(self.iss, 1)
        self.snd_max = seq_max(self.snd_max, self.snd_una)
        self.snd_wnd = segment.window
        self.state = TcpState.ESTABLISHED
        self._rtx_count = 0
        self._restart_rtx_timer()
        if not self.established_event.triggered:
            self.established_event.succeed(self)
        self.layer.connection_established(self)
        # The handshake ACK may carry data and/or FIN; fall through.
        if segment.payload or segment.fin:
            self._arrival_synchronized(segment)
        else:
            self._output()
        if self._fin_pending and not self._fin_in_flight:
            self._maybe_send_fin()

    def _arrival_time_wait(self, segment: TcpSegment) -> None:
        # A retransmitted FIN means our last ACK was lost: re-ACK, restart 2MSL.
        if segment.fin:
            self._send_ack_now()
            if self._time_wait_timer is not None:
                self._time_wait_timer.cancel()
            self._time_wait_timer = self.sim.schedule(2 * self.msl, self._time_wait_expired)

    def _arrival_synchronized(self, segment: TcpSegment) -> None:
        if segment.syn:
            # RFC 5961 §4: a SYN in a synchronized state never restarts or
            # tears down the connection; it draws a challenge ACK.  A peer
            # that genuinely rebooted answers the challenge with an
            # exact-match RST.
            self._send_challenge_ack("syn-in-sync")
            return
        if not self._seq_acceptable(segment):
            # RFC 793 p.69: a segment outside the receive window is
            # dropped after re-asserting our state with a pure ACK.  This
            # is what stops a blind attacker from landing a forged ACK or
            # FIN with an arbitrary sequence number: the segment must hit
            # the receive window *and* carry a plausible ACK to be
            # processed at all.
            self._send_ack_now()
            return
        if segment.has_ack:
            self._process_ack(segment)
        if segment.payload:
            self._process_data(segment)
        if segment.fin:
            self._process_fin(segment)

    def _seq_acceptable(self, segment: TcpSegment) -> bool:
        """RFC 793 segment acceptability against the receive window."""
        if self.recv_buffer is None:
            return True
        window = self.recv_buffer.window
        length = segment.seq_length
        if length == 0:
            if window == 0:
                return segment.seq == self.rcv_nxt
            return seq_in_window(self.rcv_nxt, segment.seq, window)
        if window == 0:
            return False
        last = seq_add(segment.seq, length - 1)
        return seq_in_window(self.rcv_nxt, segment.seq, window) or seq_in_window(
            self.rcv_nxt, last, window
        )

    def _process_ack(self, segment: TcpSegment) -> None:
        ack = segment.ack
        if seq_gt(ack, self.snd_max):
            # Acknowledges data we never sent: ignore (send an ACK per RFC).
            self._send_ack_now()
            return
        if seq_between(self.snd_una, ack, self.snd_max):
            delta = seq_sub(ack, self.snd_una)
            # The FIN's sequence slot is fixed once it has ever been sent
            # (_fin_seq is set); whether a retransmission is currently in
            # flight is irrelevant — an RTO clears _fin_in_flight, and an
            # ACK arriving in that window must still count the FIN, or its
            # slot is mistaken for a data byte and the FIN is retransmitted
            # one past its true position forever.
            fin_covered = (
                self._fin_seq is not None
                and seq_gt(ack, self._fin_seq)
            )
            data_acked = delta - 1 if fin_covered else delta
            data_acked = min(data_acked, len(self.send_buffer))
            if data_acked > 0:
                self.send_buffer.ack_bytes(data_acked)
            self.snd_una = ack
            self._rtx_count = 0
            if fin_covered and not self._fin_acked:
                self._fin_acked = True
                self._on_our_fin_acked()
            if self._rtt_probe is not None and seq_ge(ack, self._rtt_probe[0]):
                self.rto.add_sample(self.sim.now - self._rtt_probe[1])
                self._rtt_probe = None
            self.cc.on_new_ack(max(data_acked, 1))
            self.snd_wnd = segment.window
            if self.snd_wnd > 0:
                self._persist_backoff = 1
            self._restart_rtx_timer()
            self._wake_writers()
            self._output()
        elif ack == self.snd_una:
            old_wnd = self.snd_wnd
            self.snd_wnd = segment.window
            if (
                not segment.payload
                and segment.window == old_wnd
                and self._in_flight_seq_space() > 0
            ):
                if self.cc.on_duplicate_ack(self.send_buffer.in_flight):
                    self._fast_retransmit()
            elif self.snd_wnd > old_wnd:
                self._output()
        else:
            # Old acknowledgment: just refresh the window.
            self.snd_wnd = segment.window

    def _fast_retransmit(self) -> None:
        payload = self.send_buffer.peek_at(0, self.mss)
        if not payload and not self._fin_in_flight:
            return
        self.retransmissions += 1
        self.layer._m_fast_rtx.inc()
        self._rtt_probe = None
        self.tracer.emit(
            self.sim.now, "tcp.fast_rtx", self.layer.node_name, conn=str(self)
        )
        if payload:
            flags = FLAG_ACK | FLAG_PSH
            fin_too = (
                self._fin_in_flight
                and self._fin_seq is not None
                and len(payload) == len(self.send_buffer)
            )
            if fin_too:
                flags |= FLAG_FIN
            segment = TcpSegment(
                src_port=self.local_port,
                dst_port=self.remote_port,
                seq=self.snd_una,
                ack=self.rcv_nxt,
                flags=flags,
                window=self.recv_buffer.window if self.recv_buffer else 0,
                payload=payload,
            )
        else:
            segment = TcpSegment(
                src_port=self.local_port,
                dst_port=self.remote_port,
                seq=self.snd_una,
                ack=self.rcv_nxt,
                flags=FLAG_FIN | FLAG_ACK,
                window=self.recv_buffer.window if self.recv_buffer else 0,
            )
        self._transmit(segment)
        self._ack_was_piggybacked()

    def _process_data(self, segment: TcpSegment) -> None:
        if self.state not in DATA_STATES:
            # e.g. data after we saw FIN: just re-ACK.
            self._send_ack_now()
            return
        advanced = self.recv_buffer.receive(segment.seq, segment.payload)
        if advanced > 0:
            self.bytes_received += advanced
            self._wake_readers()
            self._schedule_ack()
        else:
            # Duplicate or out-of-order: immediate ACK helps fast retransmit.
            self._send_ack_now()

    def _process_fin(self, segment: TcpSegment) -> None:
        fin_seq = seq_add(segment.seq, len(segment.payload))
        if self.fin_received:
            # Duplicate of the FIN we already consumed (its slot now sits
            # one below rcv_nxt): the peer's state machine is waiting on
            # our ACK, so a silent drop would wedge it until rtx give-up.
            if seq_le(fin_seq, self.rcv_nxt):
                self._send_ack_now()
            return
        if fin_seq != self.rcv_nxt:
            return  # out of order; the FIN will be retransmitted
        self.fin_received = True
        self.recv_buffer.advance_past_fin()
        self._send_ack_now()
        self._wake_readers()
        if self.state == TcpState.ESTABLISHED:
            self.state = TcpState.CLOSE_WAIT
        elif self.state == TcpState.FIN_WAIT_1:
            # Our FIN not yet acked (else we'd be in FIN_WAIT_2).
            self.state = TcpState.CLOSING
        elif self.state == TcpState.FIN_WAIT_2:
            self._enter_time_wait()

    def _on_our_fin_acked(self) -> None:
        if self.state == TcpState.FIN_WAIT_1:
            self.state = TcpState.FIN_WAIT_2
        elif self.state == TcpState.CLOSING:
            self._enter_time_wait()
        elif self.state == TcpState.LAST_ACK:
            self._destroy(error=None)

    def _enter_time_wait(self) -> None:
        self.state = TcpState.TIME_WAIT
        self._cancel_all_timers()
        if not self.terminated_event.triggered:
            self.terminated_event.succeed()
        self._time_wait_timer = self.sim.schedule(2 * self.msl, self._time_wait_expired)
        # Hand the 4-tuple to the layer's linger table right away: it
        # answers stragglers and guards same-remote reuse, so the TCB
        # itself no longer needs to occupy the connection table (which
        # would hold the ephemeral port hostage for the full 2·MSL on
        # top of the linger window — see TcpLayer.retire_to_linger).
        self.layer.retire_to_linger(self)

    def _time_wait_expired(self) -> None:
        self._time_wait_timer = None
        self._destroy(error=None)

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------

    def _destroy(self, error: Optional[BaseException]) -> None:
        if self.state == TcpState.CLOSED and self.closed_event.triggered:
            return
        self.state = TcpState.CLOSED
        self._cancel_all_timers()
        if error is not None:
            self.reset_received = True
            if not self.established_event.triggered:
                self.established_event.fail(error)
        for event in self._readable_waiters + self._writable_waiters:
            if not event.triggered:
                event.succeed()
        self._readable_waiters = []
        self._writable_waiters = []
        if not self.terminated_event.triggered:
            self.terminated_event.succeed()
        if not self.closed_event.triggered:
            self.closed_event.succeed()
        self.layer.deregister(self)

    # ------------------------------------------------------------------
    # path MTU discovery
    # ------------------------------------------------------------------

    def apply_mtu_hint(self, mtu: int, quoted_seq: int) -> bool:
        """Clamp the effective MSS from an ICMP fragmentation-needed quote.

        RFC 5927-style validation: the quoted sequence number must fall
        inside the currently outstanding send window — an off-path
        attacker does not know it, so blind PMTUD probes are rejected —
        and the advertised MTU must not be below the IPv4 minimum
        (:data:`MIN_PMTU`).  Returns True if the clamp was applied.
        """
        if mtu < self.MIN_PMTU:
            return False
        if not (seq_le(self.snd_una, quoted_seq) and seq_lt(quoted_seq, self.snd_max)):
            return False  # quotes nothing we have outstanding
        new_mss = max(self.MIN_PMTU - 40, mtu - 40)
        if new_mss >= self.mss:
            return False
        self.mss = new_mss
        self.cc.mss = new_mss
        self.tracer.emit(
            self.sim.now, "tcp.pmtud_clamp", self.layer.node_name,
            conn=str(self), mss=new_mss,
        )
        return True

    # ------------------------------------------------------------------
    # failover support
    # ------------------------------------------------------------------

    def rebind_local_ip(self, new_ip: Ipv4Address) -> None:
        """Re-home this TCB onto a new local address (IP takeover, §5).

        The paper's kernel achieves the same effect with bridge address
        translation; re-keying the TCB is the equivalent observable
        behaviour for a simulated stack (documented in DESIGN.md).
        """
        self.local_ip = new_ip

    def export_state(self, map_seq: Optional[Callable[[int], int]] = None) -> TcpSnapshot:
        """Export this TCB as a :class:`TcpSnapshot` (reintegration).

        ``map_seq`` translates send-side sequence numbers into the
        peer-visible numbering (the bridge's Δseq); identity when the TCB
        already speaks the peer's space (a promoted secondary).  Only
        :data:`TRANSFERABLE_STATES` can be exported — a closing stream is
        not worth adopting.
        """
        if self.state not in TRANSFERABLE_STATES:
            raise ValueError(f"cannot export {self}: state {self.state.value}")
        if map_seq is None:
            map_seq = lambda seq: seq  # noqa: E731 - identity numbering
        recv = self.recv_buffer
        pending = recv.snapshot_readable() if recv is not None else b""
        return TcpSnapshot(
            local_port=self.local_port,
            remote_ip=self.remote_ip,
            remote_port=self.remote_port,
            state=self.state.value,
            failover=self.failover,
            iss=map_seq(self.iss),
            snd_una=map_seq(self.snd_una),
            snd_max=map_seq(self.snd_max),
            snd_wnd=self.snd_wnd,
            send_data=bytes(self.send_buffer._data),
            send_next_offset=self.send_buffer.next_offset,
            fin_pending=self._fin_pending,
            fin_seq=map_seq(self._fin_seq) if self._fin_seq is not None else None,
            fin_in_flight=self._fin_in_flight,
            fin_acked=self._fin_acked,
            irs=self.irs,
            rcv_nxt=self.rcv_nxt,
            recv_pending=pending,
            recv_window=recv.window if recv is not None else 0,
            fin_received=self.fin_received,
            mss=self.mss,
            send_capacity=self.send_buffer.capacity,
            recv_capacity=self.recv_buffer_size,
            min_rto=self.rto.min_rto,
            stream_written=self._total_written,
            stream_read=(recv.total_received - recv.readable_bytes) if recv else 0,
        )

    def install_state(self, snapshot: TcpSnapshot) -> None:
        """Adopt a snapshot exported from another replica.

        The connection must be freshly constructed (CLOSED, never opened).
        Afterwards it behaves exactly as if it had lived through the
        handshake and every exchanged byte: in-flight data retransmits on
        RTO, unsent data transmits, pending bytes are readable.
        """
        if self.state != TcpState.CLOSED or self.established_event.triggered:
            raise ValueError(f"install_state requires a fresh connection, not {self}")
        state = TcpState(snapshot.state)
        if state not in TRANSFERABLE_STATES:
            raise ValueError(f"cannot install snapshot in state {snapshot.state}")
        self.state = state
        self.iss = snapshot.iss
        self.irs = snapshot.irs
        self.snd_una = snapshot.snd_una
        self.snd_max = snapshot.snd_max
        self.snd_wnd = snapshot.snd_wnd
        self.mss = min(self.mss, snapshot.mss)
        self.send_buffer.restore(snapshot.send_data, snapshot.send_next_offset)
        self.recv_buffer = ReceiveBuffer(
            snapshot.rcv_nxt, capacity=self.recv_buffer_size
        )
        self.recv_buffer.restore_readable(snapshot.recv_pending)
        self._fin_pending = snapshot.fin_pending
        self._fin_seq = snapshot.fin_seq
        self._fin_in_flight = snapshot.fin_in_flight
        self._fin_acked = snapshot.fin_acked
        self.fin_received = snapshot.fin_received
        self._total_written = snapshot.stream_written
        self.established_event.succeed()
        if self._needs_rtx_timer():
            self._start_rtx_timer()
        if self.send_buffer.unsent_bytes or (
            self._fin_pending and not self._fin_in_flight
        ):
            self.sim.schedule(0, self._output)
