"""TCP segments, header options and the Internet checksum.

Checksums are modelled exactly because the paper's bridge rewrites
addressed fields on the fly and explicitly uses *incremental* checksum
update ("we subtract the original bytes from the checksum, and add the new
bytes", §3.1 — the RFC 1624 technique).  We keep sums in the mod-65535
domain where one's-complement addition is plain modular addition, and the
payload contribution is ``int.from_bytes(payload) % 65535`` (valid because
2^16 ≡ 1 mod 65535), which is O(n) in C and fast enough for 100 MB streams.

Two header options are modelled:

* ``MSS`` (kind 2) — negotiated at connection establishment; the bridge
  advertises the *minimum* of the two replicas' MSS values (§2, §7.1);
* ``ORIG_DST`` (kind 253, experimental) — carries the original client
  destination when the secondary's segments are diverted to the primary
  (§3.1: "The original destination address of the segment is included in
  the segment as a TCP header option").
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.net.addresses import Ipv4Address
from repro.tcp.seqnum import seq_add, seq_valid

FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_PSH = 0x08
FLAG_ACK = 0x10

TCP_BASE_HEADER = 20
MSS_OPTION_SIZE = 4
ORIG_DST_OPTION_SIZE = 8

_CSUM_MOD = 0xFFFF  # one's-complement sums live in Z/65535


def csum_fold(value: int) -> int:
    """Reduce any non-negative integer into the one's-complement sum domain."""
    return value % _CSUM_MOD


def csum_finalize(total: int) -> int:
    """Turn a folded sum into the on-wire checksum field."""
    return (~(total % _CSUM_MOD)) & 0xFFFF


def csum_unfinalize(checksum: int) -> int:
    """Recover the folded sum from a checksum field value."""
    return ((~checksum) & 0xFFFF) % _CSUM_MOD


def payload_sum(payload: bytes) -> int:
    """Folded one's-complement sum of a byte string (padded to 16 bits)."""
    if not payload:
        return 0
    if len(payload) % 2:
        payload = payload + b"\x00"
    return int.from_bytes(payload, "big") % _CSUM_MOD


@dataclass(frozen=True)
class TcpSegment:
    """One TCP segment.  Immutable: rewrites produce new instances."""

    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: int
    window: int
    payload: bytes = b""
    mss_option: Optional[int] = None
    orig_dst_option: Optional[Ipv4Address] = None
    checksum: int = 0

    def __post_init__(self) -> None:
        if not seq_valid(self.seq) or not seq_valid(self.ack):
            raise ValueError("sequence/ack number out of 32-bit range")
        if not 0 <= self.window <= 0xFFFF:
            raise ValueError("window out of 16-bit range")

    # -- flag helpers --------------------------------------------------------

    @property
    def syn(self) -> bool:
        return bool(self.flags & FLAG_SYN)

    @property
    def fin(self) -> bool:
        return bool(self.flags & FLAG_FIN)

    @property
    def rst(self) -> bool:
        return bool(self.flags & FLAG_RST)

    @property
    def has_ack(self) -> bool:
        return bool(self.flags & FLAG_ACK)

    @property
    def psh(self) -> bool:
        return bool(self.flags & FLAG_PSH)

    # -- sizes ---------------------------------------------------------------

    @property
    def options_size(self) -> int:
        size = 0
        if self.mss_option is not None:
            size += MSS_OPTION_SIZE
        if self.orig_dst_option is not None:
            size += ORIG_DST_OPTION_SIZE
        return size

    @property
    def header_size(self) -> int:
        return TCP_BASE_HEADER + self.options_size

    @property
    def wire_size(self) -> int:
        return self.header_size + len(self.payload)

    @property
    def seq_length(self) -> int:
        """Sequence space consumed: payload plus SYN/FIN virtual bytes."""
        return len(self.payload) + (1 if self.syn else 0) + (1 if self.fin else 0)

    @property
    def seq_end(self) -> int:
        return seq_add(self.seq, self.seq_length)

    # -- checksum ------------------------------------------------------------

    def _offset_flags_word(self) -> int:
        data_offset = self.header_size // 4
        return (data_offset << 12) | self.flags

    def header_sum(self, src_ip: Ipv4Address, dst_ip: Ipv4Address) -> int:
        """Folded sum of pseudo-header, header and options (not payload)."""
        total = (
            src_ip.value  # replint: allow(seq) -- one's-complement folding: seq/ack enter the mod-65535 checksum domain as 32-bit words, not sequence points
            + dst_ip.value
            + 6  # protocol
            + self.wire_size  # TCP length in pseudo-header
            + self.src_port
            + self.dst_port
            + self.seq
            + self.ack
            + self._offset_flags_word()
            + self.window
        )
        if self.mss_option is not None:
            total += 0x0204 + self.mss_option
        if self.orig_dst_option is not None:
            total += 0xFD08 + self.orig_dst_option.value
        return csum_fold(total)

    def compute_checksum(self, src_ip: Ipv4Address, dst_ip: Ipv4Address) -> int:
        return csum_finalize(self.header_sum(src_ip, dst_ip) + payload_sum(self.payload))

    def sealed(self, src_ip: Ipv4Address, dst_ip: Ipv4Address) -> "TcpSegment":
        """Copy of this segment with a freshly computed checksum."""
        return replace(self, checksum=self.compute_checksum(src_ip, dst_ip))

    def checksum_ok(self, src_ip: Ipv4Address, dst_ip: Ipv4Address) -> bool:
        return self.checksum == self.compute_checksum(src_ip, dst_ip)

    def flag_names(self) -> str:
        names = []
        for bit, name in (
            (FLAG_SYN, "SYN"),
            (FLAG_ACK, "ACK"),
            (FLAG_FIN, "FIN"),
            (FLAG_RST, "RST"),
            (FLAG_PSH, "PSH"),
        ):
            if self.flags & bit:
                names.append(name)
        return "|".join(names) or "none"

    def __repr__(self) -> str:
        return (
            f"TcpSegment({self.src_port}->{self.dst_port} {self.flag_names()}"
            f" seq={self.seq} ack={self.ack} win={self.window}"
            f" len={len(self.payload)})"
        )


_UNSET = object()


def incremental_rewrite(
    segment: TcpSegment,
    old_src: Ipv4Address,
    old_dst: Ipv4Address,
    new_src: Optional[Ipv4Address] = None,
    new_dst: Optional[Ipv4Address] = None,
    seq: Optional[int] = None,
    ack: Optional[int] = None,
    window: Optional[int] = None,
    flags: Optional[int] = None,
    orig_dst: object = _UNSET,
) -> TcpSegment:
    """Rewrite header fields, updating the checksum *incrementally*.

    This is the bridge's RFC 1624-style update: the payload is never
    touched, only the delta between old and new header/pseudo-header words
    is applied to the folded sum.  ``orig_dst`` may be an
    :class:`Ipv4Address` (add/replace the ORIG_DST option), ``None``
    (remove it) or left unset (keep as is).
    """
    total = csum_unfinalize(segment.checksum)
    changes = {}

    def swap(old_value: int, new_value: int) -> None:
        nonlocal total
        # replint: allow(seq-taint) -- RFC 1624 ones-complement update: header words are 16-bit sum terms, not sequence-space points
        total = csum_fold(total + _CSUM_MOD - (old_value % _CSUM_MOD) + new_value)

    if new_src is not None and new_src != old_src:
        swap(old_src.value, new_src.value)
    if new_dst is not None and new_dst != old_dst:
        swap(old_dst.value, new_dst.value)
    if seq is not None and seq != segment.seq:
        swap(segment.seq, seq)
        changes["seq"] = seq
    if ack is not None and ack != segment.ack:
        swap(segment.ack, ack)
        changes["ack"] = ack
    if window is not None and window != segment.window:
        swap(segment.window, window)
        changes["window"] = window
    new_flags = segment.flags if flags is None else flags
    new_orig = segment.orig_dst_option if orig_dst is _UNSET else orig_dst

    if new_orig is not segment.orig_dst_option or new_flags != segment.flags:
        # Option / flag changes move the data offset and the TCP length.
        old_word = segment._offset_flags_word()
        old_len = segment.wire_size
        old_opt_sum = (
            0xFD08 + segment.orig_dst_option.value
            if segment.orig_dst_option is not None
            else 0
        )
        tentative = replace(segment, flags=new_flags, orig_dst_option=new_orig, **changes)
        new_word = tentative._offset_flags_word()
        new_len = tentative.wire_size
        new_opt_sum = (
            0xFD08 + new_orig.value if new_orig is not None else 0
        )
        swap(old_word, new_word)
        swap(old_len, new_len)
        swap(old_opt_sum, new_opt_sum)
        result = tentative
    else:
        result = replace(segment, **changes) if changes else segment

    return replace(result, checksum=csum_finalize(total))
