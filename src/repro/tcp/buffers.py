"""Send and receive buffers.

The send buffer defaults to 64 KB as in the paper's FreeBSD 4.4 testbed;
its blocking behaviour is what flattens the small-message end of Figure 3
("the send call returns when the application has passed the last byte to
the stack, not when the last byte has been put on the wire").

The receive buffer performs out-of-order reassembly and computes the
advertised window, which matters for the bridge's min-window merge.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.tcp.seqnum import seq_add, seq_ge, seq_in_window, seq_lt, seq_sub


class SendBuffer:
    """Bytes accepted from the application but not yet acknowledged.

    Layout (offsets relative to ``una_seq``, the lowest unacknowledged
    sequence number)::

        [0 .. next_offset)   sent, in flight
        [next_offset .. end) accepted, not yet sent
    """

    def __init__(self, capacity: int = 65536):
        if capacity <= 0:
            raise ValueError("send buffer capacity must be positive")
        self.capacity = capacity
        self._data = bytearray()
        self.next_offset = 0

    def __len__(self) -> int:
        return len(self._data)

    @property
    def free_space(self) -> int:
        return self.capacity - len(self._data)

    @property
    def unsent_bytes(self) -> int:
        return len(self._data) - self.next_offset

    @property
    def in_flight(self) -> int:
        return self.next_offset

    def write(self, data: bytes) -> int:
        """Append as much of ``data`` as fits; returns the accepted count."""
        accepted = min(len(data), self.free_space)
        if accepted:
            self._data.extend(data[:accepted])
        return accepted

    def peek_unsent(self, limit: int) -> bytes:
        """Up to ``limit`` bytes of never-sent data (for new transmission)."""
        end = min(len(self._data), self.next_offset + limit)
        return bytes(self._data[self.next_offset : end])

    def peek_at(self, offset: int, limit: int) -> bytes:
        """Up to ``limit`` buffered bytes starting at ``offset`` (retransmit)."""
        end = min(len(self._data), offset + limit)
        return bytes(self._data[offset:end])

    def mark_sent(self, count: int) -> None:
        if count > self.unsent_bytes:
            raise ValueError("marking more bytes sent than are buffered")
        self.next_offset += count

    def ack_bytes(self, count: int) -> None:
        """Drop ``count`` acknowledged bytes from the front."""
        if count > len(self._data):
            raise ValueError("acknowledging more bytes than are buffered")
        del self._data[:count]
        self.next_offset = max(0, self.next_offset - count)

    def rewind(self) -> None:
        """Retransmission: everything in flight becomes unsent again."""
        self.next_offset = 0

    def restore(self, data: bytes, next_offset: int) -> None:
        """Reload buffer contents from a connection snapshot (reintegration)."""
        if len(data) > self.capacity:
            raise ValueError("snapshot larger than the buffer capacity")
        if not 0 <= next_offset <= len(data):
            raise ValueError("snapshot next_offset outside the buffered range")
        self._data = bytearray(data)
        self.next_offset = next_offset


class ReceiveBuffer:
    """Reassembly queue plus the in-order bytes awaiting the application."""

    def __init__(self, rcv_nxt: int, capacity: int = 65536, max_ooo_segments: int = 64):
        self.capacity = capacity
        self.rcv_nxt = rcv_nxt
        self._readable = bytearray()
        self._out_of_order: Dict[int, bytes] = {}
        self.max_ooo_segments = max_ooo_segments
        self.duplicate_segments = 0
        self.total_received = 0
        self.bytes_trimmed = 0  # data beyond the advertised window

    @property
    def readable_bytes(self) -> int:
        return len(self._readable)

    @property
    def window(self) -> int:
        """Advertised receive window (bounded to the 16-bit field)."""
        return max(0, min(0xFFFF, self.capacity - len(self._readable)))

    def receive(self, seq: int, data: bytes) -> int:
        """Accept segment payload; returns how many bytes became in-order.

        Handles duplicates, overlaps and out-of-order arrival.  Data beyond
        the advertised window is trimmed (the sender violated the window or
        probed a zero window).
        """
        if not data:
            return 0
        window = self.window
        # Trim the portion already delivered.
        if seq_lt(seq, self.rcv_nxt):
            skip = seq_sub(self.rcv_nxt, seq)
            if skip >= len(data):
                self.duplicate_segments += 1
                return 0
            data = data[skip:]
            seq = self.rcv_nxt
        # Trim anything beyond the window.
        offset = seq_sub(seq, self.rcv_nxt)
        if offset >= window:
            self.duplicate_segments += 1
            if not seq_in_window(self.rcv_nxt, seq, 1 << 30):
                pass  # ancient duplicate, not a window overrun
            else:
                self.bytes_trimmed += len(data)
            return 0
        if offset + len(data) > window:
            self.bytes_trimmed += offset + len(data) - window
            data = data[: window - offset]
        if offset == 0:
            return self._append_in_order(data)
        # Out of order: store (first writer wins; dupes are common on loss).
        if len(self._out_of_order) < self.max_ooo_segments and seq not in self._out_of_order:
            self._out_of_order[seq] = data
        return 0

    def _append_in_order(self, data: bytes) -> int:
        self._readable.extend(data)
        self.rcv_nxt = seq_add(self.rcv_nxt, len(data))
        self.total_received += len(data)
        advanced = len(data)
        advanced += self._drain_out_of_order()
        return advanced

    def _drain_out_of_order(self) -> int:
        advanced = 0
        while True:
            match: Optional[int] = None
            for seq in self._out_of_order:
                if seq_in_window(seq, self.rcv_nxt, len(self._out_of_order[seq]) + 1):
                    match = seq
                    break
            if match is None:
                return advanced
            data = self._out_of_order.pop(match)
            skip = seq_sub(self.rcv_nxt, match)
            if skip < len(data):
                fresh = data[skip:]
                self._readable.extend(fresh)
                self.rcv_nxt = seq_add(self.rcv_nxt, len(fresh))
                self.total_received += len(fresh)
                advanced += len(fresh)

    def advance_past_fin(self) -> None:
        """Consume the FIN's virtual sequence slot."""
        self.rcv_nxt = seq_add(self.rcv_nxt, 1)

    def read(self, max_bytes: int) -> bytes:
        take = min(max_bytes, len(self._readable))
        data = bytes(self._readable[:take])
        del self._readable[:take]
        return data

    def snapshot_readable(self) -> bytes:
        """In-order bytes delivered but not yet consumed by the application."""
        return bytes(self._readable)

    def restore_readable(self, data: bytes) -> None:
        """Reload the readable queue from a connection snapshot.

        The buffer must have been constructed with the snapshot's
        ``rcv_nxt`` — the restored bytes sit *behind* it, already counted
        by the sequence space, so only the delivery bookkeeping moves.
        """
        if self._readable or self._out_of_order:
            raise ValueError("restore_readable requires a fresh buffer")
        self._readable.extend(data)
        self.total_received += len(data)
