"""Congestion control: slow start, congestion avoidance, fast retransmit.

A Reno-shaped controller, period-appropriate for the paper's FreeBSD 4.4
stack.  On the LAN experiments the window opens almost immediately and the
send rate is CPU/wire-bound; on the WAN FTP experiment (Fig. 6) slow start
and loss recovery dominate the small-file transfer rates, which is exactly
the effect the paper's numbers show.
"""

from __future__ import annotations


class CongestionControl:
    """Per-connection congestion state."""

    DUP_ACK_THRESHOLD = 3

    def __init__(self, mss: int, initial_window_segments: int = 2):
        self.mss = mss
        self.cwnd = initial_window_segments * mss
        self.ssthresh = 64 * 1024
        self.dup_acks = 0
        self.fast_retransmits = 0
        self.timeouts = 0

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def window(self, peer_window: int) -> int:
        """Usable send window given the peer's advertised window."""
        return min(self.cwnd, peer_window)

    def on_new_ack(self, acked_bytes: int) -> None:
        """Acknowledgement of new data: grow cwnd."""
        self.dup_acks = 0
        if self.in_slow_start:
            self.cwnd += min(acked_bytes, self.mss)
        else:
            # Congestion avoidance: about one MSS per RTT.
            self.cwnd += max(1, self.mss * self.mss // self.cwnd)

    def on_duplicate_ack(self, in_flight: int) -> bool:
        """Count a duplicate ACK; True when fast retransmit should fire."""
        self.dup_acks += 1
        if self.dup_acks == self.DUP_ACK_THRESHOLD:
            self.fast_retransmits += 1
            self.ssthresh = max(in_flight // 2, 2 * self.mss)
            self.cwnd = self.ssthresh
            return True
        return False

    def on_timeout(self, in_flight: int) -> None:
        """Retransmission timeout: collapse to one segment."""
        self.timeouts += 1
        self.ssthresh = max(in_flight // 2, 2 * self.mss)
        self.cwnd = self.mss
        self.dup_acks = 0
