"""Blocking-style socket facade for simulation processes.

Application code (the echo/bulk/FTP apps, the benchmark drivers) runs as
generator processes; these wrappers expose ``yield from``-able operations
mirroring the BSD socket calls the paper's applications use::

    sock = SimSocket.connect(host, server_ip, 80)
    yield from sock.wait_connected()
    yield from sock.send_all(request)
    reply = yield from sock.recv_exactly(1024)
    yield from sock.close_and_wait()

``send_all`` returns when the last byte has been accepted by the stack's
send buffer — matching the paper's definition of "send time" in Figure 3,
*not* when the data is on the wire.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.net.addresses import Ipv4Address
from repro.tcp.connection import ConnectionReset, TcpConnection
from repro.tcp.layer import Listener


class SocketClosedError(ConnectionError):
    """Operation on a socket whose connection is gone."""


class SimSocket:
    """Wrapper around one :class:`TcpConnection`."""

    def __init__(self, conn: TcpConnection):
        self.conn = conn

    @classmethod
    def connect(
        cls,
        host: "Host",  # noqa: F821
        remote_ip: Ipv4Address,
        remote_port: int,
        local_port: Optional[int] = None,
        failover: bool = False,
        **options: Any,
    ) -> "SimSocket":
        """Open an active connection from ``host`` (SYN goes out now)."""
        conn = host.tcp.connect(
            remote_ip, remote_port, local_port=local_port, failover=failover, **options
        )
        return cls(conn)

    # -- generator-style operations (yield from) ---------------------------

    def wait_connected(self) -> Generator:
        """Block until ESTABLISHED; raises on reset/timeout."""
        yield self.conn.established_event
        return self

    def send_all(self, data: bytes) -> Generator:
        """Block until every byte has been accepted by the send buffer.

        Each successful write charges the host CPU for the syscall and the
        copy into the socket buffer — the time the paper's Figure 3
        measures ("the send call returns when the application has passed
        the last byte to the stack").
        """
        from repro.sim.process import Event

        host = getattr(self.conn.layer, "host", None)
        view = memoryview(data)
        offset = 0
        while offset < len(view):
            if self.conn.reset_received:
                raise ConnectionReset(f"{self.conn}: reset during send")
            accepted = self.conn.write(bytes(view[offset:]))
            offset += accepted
            if host is not None and accepted:
                cost = (
                    host.app_write_fixed_cost
                    + host.app_write_byte_cost * accepted
                )
                if cost > 0:
                    done = Event(self.conn.sim, name="write-cost")
                    host.cpu.run(cost, done.succeed)
                    yield done
            if offset < len(view):
                yield self.conn.wait_writable()
        return len(data)

    def recv(self, max_bytes: int) -> Generator:
        """Block for at least one byte; returns b'' on orderly EOF."""
        while True:
            data = self.conn.read(max_bytes)
            if data:
                return data
            if self.conn.eof:
                return b""
            if self.conn.reset_received:
                raise ConnectionReset(f"{self.conn}: reset during recv")
            yield self.conn.wait_readable()

    def recv_exactly(self, count: int) -> Generator:
        """Block until exactly ``count`` bytes arrive (EOF is an error)."""
        chunks = []
        remaining = count
        while remaining > 0:
            data = yield from self.recv(remaining)
            if not data:
                raise SocketClosedError(
                    f"{self.conn}: EOF with {remaining} bytes outstanding"
                )
            chunks.append(data)
            remaining -= len(data)
        return b"".join(chunks)

    def recv_until_eof(self, chunk_size: int = 65536) -> Generator:
        """Drain the stream to EOF; returns everything received."""
        chunks = []
        while True:
            data = yield from self.recv(chunk_size)
            if not data:
                return b"".join(chunks)
            chunks.append(data)

    def recv_line(self, max_len: int = 4096) -> Generator:
        """Read a CRLF- or LF-terminated line (terminator stripped)."""
        buf = bytearray()
        while len(buf) < max_len:
            data = yield from self.recv(1)
            if not data:
                return bytes(buf)
            if data == b"\n":
                if buf.endswith(b"\r"):
                    del buf[-1:]
                return bytes(buf)
            buf.extend(data)
        return bytes(buf)

    def close_and_wait(self) -> Generator:
        """Half-close our side and wait for the termination handshake.

        Returns when both FINs are exchanged and acknowledged (TIME_WAIT
        counts as terminated); it does not wait out the 2·MSL timer.
        """
        self.conn.close()
        yield self.conn.terminated_event
        return None

    # -- immediate operations ------------------------------------------------

    def close(self) -> None:
        """Half-close our send side without waiting."""
        self.conn.close()

    def abort(self) -> None:
        self.conn.abort()

    @property
    def connected(self) -> bool:
        return self.conn.established_event.triggered and not self.conn.reset_received

    def __repr__(self) -> str:
        return f"SimSocket({self.conn!r})"


class ListeningSocket:
    """Wrapper around a :class:`~repro.tcp.layer.Listener`."""

    def __init__(self, listener: Listener):
        self.listener = listener

    @classmethod
    def listen(
        cls, host: "Host", port: int, backlog: int = 16, failover: bool = False  # noqa: F821
    ) -> "ListeningSocket":
        return cls(host.tcp.listen(port, backlog=backlog, failover=failover))

    def accept(self) -> Generator:
        """Block until a connection completes the handshake."""
        conn = yield self.listener.accept_queue.get()
        return SimSocket(conn)

    def close(self) -> None:
        self.listener.close()
