"""Userspace TCP implementation.

A faithful-enough TCP per RFC 793/879 for the failover bridge to sit
under: three-way handshake with MSS negotiation, sliding-window flow
control, retransmission with Jacobson RTO and Karn's rule, delayed and
piggybacked acknowledgements, slow start / congestion avoidance / fast
retransmit, four-way termination with half-close and TIME_WAIT, and a
64 KB send buffer whose blocking behaviour produces the Figure-3 shape.

The implementation is deliberately event-driven and kernel-shaped (a
:class:`~repro.tcp.layer.TcpLayer` per host demultiplexing to
:class:`~repro.tcp.connection.TcpConnection` control blocks) so the
paper's bridge can interpose between it and IP exactly as described.
"""

from repro.tcp.connection import TcpConnection, TcpState
from repro.tcp.layer import Listener, TcpLayer
from repro.tcp.segment import FLAG_ACK, FLAG_FIN, FLAG_PSH, FLAG_RST, FLAG_SYN, TcpSegment
from repro.tcp.socket_api import ListeningSocket, SimSocket

__all__ = [
    "FLAG_ACK",
    "FLAG_FIN",
    "FLAG_PSH",
    "FLAG_RST",
    "FLAG_SYN",
    "Listener",
    "ListeningSocket",
    "SimSocket",
    "TcpConnection",
    "TcpLayer",
    "TcpSegment",
    "TcpState",
]
