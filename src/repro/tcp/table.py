"""Slotted storage for per-host TCB state (connection + linger tables).

The TCP layer's two hot lookups used to be plain dicts scanned linearly
for port questions: every ephemeral allocation walked *all* connections
(`any(key[1] == port ...)`) and *all* linger records, and every
allocation also swept the full linger table for expired entries.  At
fleet scale (tens of thousands of flows per host) those O(n) walks
dominate connection setup.

:class:`ConnectionTable` keeps TCBs in slot arrays (struct-of-arrays:
parallel key/connection lists indexed by a stable slot number, recycled
through a free list) with a per-port reference count, so

* key lookup stays one dict probe (key → slot → array read);
* ``port_in_use`` is O(1) — a refcount probe instead of a table scan;
* slots are reused, so long-running churn does not grow the arrays.

:class:`LingerTable` holds the TIME_WAIT-style records behind the same
mapping interface, with two auxiliary indexes:

* per-port buckets (insertion-ordered dicts, not sets — iteration must
  stay deterministic) so "is this port still cooling down toward that
  remote?" reads one small bucket instead of the whole table;
* an append-only expiry queue so pruning pops expired heads in O(1)
  amortised instead of re-scanning every record per allocation.  A
  record that was deleted or re-added keeps a stale queue entry; the
  prune loop validates each popped entry against the live table and
  skips strays, and every *query* checks the record's own expiry, so a
  stale queue never changes an answer.

Both tables are ``MutableMapping``s over the same 4-tuple keys the old
dicts used, preserving iteration order (insertion order) and dict
equality — callers and tests that treated them as dicts keep working.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator, MutableMapping
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from repro.net.addresses import Ipv4Address

if TYPE_CHECKING:
    from repro.tcp.connection import TcpConnection

#: (local IP, local port, remote IP, remote port)
ConnKey = Tuple[Ipv4Address, int, Ipv4Address, int]

#: (expiry, snd_nxt, rcv_nxt, failover) — what a linger ACK needs to
#: echo, plus whether the closed connection was a failover one (so an IP
#: takeover can re-home its record along with the live TCBs).
LingerEntry = Tuple[float, int, int, bool]


class ConnectionTable(MutableMapping[ConnKey, "TcpConnection"]):
    """Slot-array TCB store with O(1) port-occupancy queries."""

    __slots__ = ("_index", "_keys", "_conns", "_free", "_port_refs")

    def __init__(self) -> None:
        self._index: Dict[ConnKey, int] = {}
        self._keys: List[Optional[ConnKey]] = []
        self._conns: List[Optional["TcpConnection"]] = []
        self._free: List[int] = []
        self._port_refs: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._index)

    def __iter__(self) -> Iterator[ConnKey]:
        return iter(self._index)

    def __getitem__(self, key: ConnKey) -> "TcpConnection":
        conn = self._conns[self._index[key]]
        assert conn is not None  # a mapped slot always holds a connection
        return conn

    def __setitem__(self, key: ConnKey, conn: "TcpConnection") -> None:
        slot = self._index.get(key)
        if slot is not None:
            self._conns[slot] = conn
            return
        if self._free:
            slot = self._free.pop()
            self._keys[slot] = key
            self._conns[slot] = conn
        else:
            slot = len(self._keys)
            self._keys.append(key)
            self._conns.append(conn)
        self._index[key] = slot
        port = key[1]
        self._port_refs[port] = self._port_refs.get(port, 0) + 1

    def __delitem__(self, key: ConnKey) -> None:
        slot = self._index.pop(key)
        self._keys[slot] = None
        self._conns[slot] = None
        self._free.append(slot)
        port = key[1]
        refs = self._port_refs[port] - 1
        if refs:
            self._port_refs[port] = refs
        else:
            del self._port_refs[port]

    def clear(self) -> None:
        self._index.clear()
        self._keys.clear()
        self._conns.clear()
        self._free.clear()
        self._port_refs.clear()

    def port_in_use(self, port: int) -> bool:
        return port in self._port_refs

    def count_ports_in_range(self, lo: int, hi: int) -> int:
        """Connections whose local port falls in ``[lo, hi)`` (for the
        exhaustion diagnostic; iterates distinct ports, not TCBs)."""
        return sum(refs for port, refs in self._port_refs.items() if lo <= port < hi)


class LingerTable(MutableMapping[ConnKey, LingerEntry]):
    """TIME_WAIT-style records with per-port buckets and lazy expiry."""

    __slots__ = ("_entries", "_by_port", "_expiry")

    def __init__(self) -> None:
        self._entries: Dict[ConnKey, LingerEntry] = {}
        self._by_port: Dict[int, Dict[ConnKey, None]] = {}
        self._expiry: Deque[Tuple[float, ConnKey]] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ConnKey]:
        return iter(self._entries)

    def __getitem__(self, key: ConnKey) -> LingerEntry:
        return self._entries[key]

    def __setitem__(self, key: ConnKey, entry: LingerEntry) -> None:
        if key not in self._entries:
            self._by_port.setdefault(key[1], {})[key] = None
        self._entries[key] = entry
        self._expiry.append((entry[0], key))

    def __delitem__(self, key: ConnKey) -> None:
        del self._entries[key]
        bucket = self._by_port[key[1]]
        del bucket[key]
        if not bucket:
            del self._by_port[key[1]]

    def clear(self) -> None:
        self._entries.clear()
        self._by_port.clear()
        self._expiry.clear()

    def prune(self, now: float) -> None:
        """Drop records whose window has passed.  O(1) amortised: each
        queue entry is popped exactly once over the table's lifetime."""
        queue = self._expiry
        entries = self._entries
        while queue and queue[0][0] <= now:
            _, key = queue.popleft()
            entry = entries.get(key)
            # Skip strays: the record was deleted, or re-added with a
            # later expiry (the re-add queued its own entry).
            if entry is not None and now >= entry[0]:
                del self[key]

    def port_blocked(
        self,
        port: int,
        now: float,
        remote_ip: Optional[Ipv4Address] = None,
        remote_port: Optional[int] = None,
    ) -> bool:
        """Is ``port`` still cooling down (toward ``remote``, if given)?"""
        bucket = self._by_port.get(port)
        if not bucket:
            return False
        for key in bucket:
            if now >= self._entries[key][0]:
                continue  # expired, awaiting prune
            if remote_ip is None or remote_port is None:
                return True
            if key[2] == remote_ip and key[3] == remote_port:
                return True
        return False

    def count_ports_in_range(self, lo: int, hi: int) -> int:
        return sum(
            len(bucket) for port, bucket in self._by_port.items() if lo <= port < hi
        )
