"""Modular 32-bit TCP sequence-number arithmetic.

Sequence numbers live in Z/2^32 and comparisons are defined relative to a
window of less than 2^31 (RFC 793 §3.3).  The failover bridge does all of
its matching and Δseq adjustment in this arithmetic, so wraparound has to
be exact — the property tests in ``tests/tcp/test_seqnum.py`` exercise it.
"""

from __future__ import annotations

SEQ_MOD = 1 << 32
_HALF = 1 << 31


def seq_valid(value: int) -> bool:
    """Is ``value`` a representable sequence number (in [0, 2^32))?"""
    return 0 <= value < SEQ_MOD


def seq_add(a: int, b: int) -> int:
    """a + b (mod 2^32)."""
    return (a + b) % SEQ_MOD


def seq_sub(a: int, b: int) -> int:
    """a - b (mod 2^32); the distance going forward from b to a."""
    return (a - b) % SEQ_MOD


def seq_diff(a: int, b: int) -> int:
    """Signed difference a - b interpreted in (-2^31, 2^31]."""
    d = (a - b) % SEQ_MOD
    return d - SEQ_MOD if d >= _HALF else d


def seq_lt(a: int, b: int) -> bool:
    """a strictly precedes b."""
    return seq_diff(a, b) < 0


def seq_le(a: int, b: int) -> bool:
    return seq_diff(a, b) <= 0


def seq_gt(a: int, b: int) -> bool:
    return seq_diff(a, b) > 0


def seq_ge(a: int, b: int) -> bool:
    return seq_diff(a, b) >= 0


def seq_max(a: int, b: int) -> int:
    """The later of two nearby sequence numbers."""
    return a if seq_ge(a, b) else b


def seq_min(a: int, b: int) -> int:
    """The earlier of two nearby sequence numbers."""
    return a if seq_le(a, b) else b


def seq_between(left: int, x: int, right: int) -> bool:
    """left < x <= right in modular order (RFC 793 acceptable-ACK test)."""
    return seq_lt(left, x) and seq_le(x, right)


def seq_in_window(start: int, x: int, length: int) -> bool:
    """start <= x < start + length in modular order."""
    return seq_sub(x, start) < length
