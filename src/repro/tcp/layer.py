"""Per-host TCP layer: demultiplexing, listeners, connection table.

A TCP connection is identified by the 4-tuple (local IP, local port,
remote IP, remote port) — the paper relies on that same 4-tuple to key
bridge state (§7.1).  Ephemeral ports are allocated from a deterministic
counter: actively-replicated applications on the primary and secondary
therefore allocate *identical* port numbers, which §7.2 (server-initiated
establishment) silently requires.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.net.addresses import Ipv4Address
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.obs.spans import NULL_SPANS, SpanTracer, flow_key
from repro.sim.engine import Simulator
from repro.sim.process import Queue
from repro.sim.rng import seeded_rng
from repro.sim.trace import Tracer
from repro.tcp.connection import TcpConnection, TcpSnapshot, TcpState
from repro.tcp.segment import FLAG_ACK, FLAG_RST, TcpSegment
from repro.tcp.seqnum import seq_in_window
from repro.tcp.table import ConnectionTable, ConnKey, LingerTable

EPHEMERAL_PORT_START = 32768
EPHEMERAL_PORT_END = 61000

#: Receive window a lingering (TIME_WAIT) key advertises in its ACKs and
#: uses to classify stray RSTs as in-window (RFC 5961 §3.2).
LINGER_WINDOW = 0xFFFF


class Listener:
    """A passive (listening) endpoint with an accept queue."""

    def __init__(self, layer: "TcpLayer", port: int, backlog: int = 16, failover: bool = False):
        self.layer = layer
        self.port = port
        self.backlog = backlog
        self.failover = failover
        self.accept_queue: Queue = Queue(layer.sim, name=f"accept:{port}")
        self.pending = 0  # connections in SYN_RCVD
        self.closed = False

    def close(self) -> None:
        self.closed = True
        self.layer.close_listener(self.port)


class TcpLayer:
    """All TCP endpoints of one host."""

    def __init__(
        self,
        sim: Simulator,
        node_name: str,
        local_ips: Callable[[], List[Ipv4Address]],
        transmit: Callable[[TcpSegment, Ipv4Address, Ipv4Address], None],
        tracer: Optional[Tracer] = None,
        rng: Optional[random.Random] = None,
        conn_defaults: Optional[dict] = None,
        metrics: Optional[MetricsRegistry] = None,
        spans: Optional[SpanTracer] = None,
    ):
        self.sim = sim
        self.node_name = node_name
        self.local_ips = local_ips
        self._transmit = transmit
        self.tracer = tracer or Tracer(record=False)
        self.spans = spans or NULL_SPANS
        self.rng = rng or seeded_rng(0)
        self.conn_defaults = conn_defaults or {}
        self.metrics = metrics or NULL_METRICS
        # Pre-bound instruments: per-segment paths stay one branch when
        # the registry is disabled.  Connections update the rtx counters
        # through these references.
        self._m_tx = self.metrics.counter("tcp.segments_sent", host=node_name)
        self._m_tx_bytes = self.metrics.counter("tcp.bytes_sent", host=node_name)
        self._m_rtx = self.metrics.counter("tcp.retransmits", host=node_name)
        self._m_fast_rtx = self.metrics.counter("tcp.fast_retransmits", host=node_name)
        self._m_rsts = self.metrics.counter("tcp.rsts_sent", host=node_name)
        self._m_challenge = self.metrics.counter("tcp.challenge_acks", host=node_name)
        self._m_pmtud_ok = self.metrics.counter("tcp.pmtud_accepted", host=node_name)
        self._m_pmtud_rej = self.metrics.counter("tcp.pmtud_rejected", host=node_name)
        self.connections: ConnectionTable = ConnectionTable()
        self.listeners: Dict[int, Listener] = {}
        # Instance attributes so tests can shrink the range and exercise
        # exhaustion without 28k allocations.
        self.ephemeral_port_start = EPHEMERAL_PORT_START
        self.ephemeral_port_end = EPHEMERAL_PORT_END
        self._next_ephemeral = self.ephemeral_port_start
        self.rsts_sent = 0
        self.pmtud_accepted = 0
        self.pmtud_rejected = 0
        # Recently-closed 4-tuples: key -> (expiry, snd_nxt, rcv_nxt).
        # A retransmitted FIN/data segment that arrives after a clean
        # close is answered with a pure ACK instead of a RST, the
        # TIME_WAIT courtesy a real stack extends to a peer whose last
        # ACK was lost.  Pruned lazily — no timers, so an idle simulator
        # still quiesces.
        self.linger_duration = 2.0
        self._lingering: LingerTable = LingerTable()
        self.linger_acks_sent = 0
        # RFC 5961 §10 throttle state for lingering (TIME_WAIT) keys:
        # key -> (window_start, challenges_sent_in_window).  A TIME_WAIT
        # endpoint keeps answering in-window RST probes with challenge
        # ACKs, so retiring the TCB must not retire the rate limit.
        self._linger_challenges: Dict[ConnKey, Tuple[float, int]] = {}

    # ------------------------------------------------------------------
    # configuration and identity
    # ------------------------------------------------------------------

    def choose_iss(self) -> int:
        """Initial send sequence.  Random per connection, per host — the
        bridge's Δseq absorbs the difference between the replicas."""
        return self.rng.randrange(1 << 32)

    def allocate_ephemeral_port(
        self,
        remote_ip: Optional[Ipv4Address] = None,
        remote_port: Optional[int] = None,
    ) -> int:
        """Deterministic ephemeral allocation (see module docstring).

        A port whose 4-tuple is still lingering in TIME_WAIT-style state
        must not be reused toward the same remote endpoint: the peer would
        see a SYN for a connection it may still hold state for, and our
        linger record would swallow the handshake.  When the caller knows
        the destination (``connect`` always does) only a matching lingering
        remote blocks the port; without that context any lingering use of
        the port blocks it.
        """
        self._prune_lingering()
        span = self.ephemeral_port_end - self.ephemeral_port_start
        for _ in range(span):
            port = self._next_ephemeral
            self._next_ephemeral += 1
            if self._next_ephemeral >= self.ephemeral_port_end:
                self._next_ephemeral = self.ephemeral_port_start
            if self._port_in_use(port):
                continue
            if self._port_lingering(port, remote_ip, remote_port):
                continue
            return port
        active = self.connections.count_ports_in_range(
            self.ephemeral_port_start, self.ephemeral_port_end
        )
        lingering = self._lingering.count_ports_in_range(
            self.ephemeral_port_start, self.ephemeral_port_end
        )
        raise OSError(
            f"{self.node_name}: ephemeral ports exhausted"
            f" ({span} in range {self.ephemeral_port_start}-"
            f"{self.ephemeral_port_end - 1}: {active} held by live"
            f" connections, {lingering} lingering after close)"
        )

    def _prune_lingering(self) -> None:
        """Drop linger records whose TIME_WAIT-style window has expired."""
        self._lingering.prune(self.sim.now)
        if self._linger_challenges:
            self._linger_challenges = {
                key: state
                for key, state in self._linger_challenges.items()
                if key in self._lingering
            }

    def _port_in_use(self, port: int) -> bool:
        return port in self.listeners or self.connections.port_in_use(port)

    def _port_lingering(
        self,
        port: int,
        remote_ip: Optional[Ipv4Address],
        remote_port: Optional[int],
    ) -> bool:
        return self._lingering.port_blocked(port, self.sim.now, remote_ip, remote_port)

    # ------------------------------------------------------------------
    # opening endpoints
    # ------------------------------------------------------------------

    def listen(self, port: int, backlog: int = 16, failover: bool = False) -> Listener:
        if port in self.listeners:
            raise OSError(f"{self.node_name}: port {port} already listening")
        listener = Listener(self, port, backlog=backlog, failover=failover)
        self.listeners[port] = listener
        return listener

    def close_listener(self, port: int) -> None:
        self.listeners.pop(port, None)

    def connect(
        self,
        remote_ip: Ipv4Address,
        remote_port: int,
        local_ip: Optional[Ipv4Address] = None,
        local_port: Optional[int] = None,
        failover: bool = False,
        **options: Any,
    ) -> TcpConnection:
        """Open an active connection (SYN is sent immediately)."""
        if local_ip is None:
            ips = self.local_ips()
            if not ips:
                raise OSError(f"{self.node_name}: no local IP")
            local_ip = ips[0]
        if local_port is None:
            local_port = self.allocate_ephemeral_port(remote_ip, remote_port)
        key = (local_ip, local_port, remote_ip, remote_port)
        if key in self.connections:
            raise OSError(f"{self.node_name}: connection {key} already exists")
        kwargs = dict(self.conn_defaults)
        kwargs.update(options)
        conn = TcpConnection(
            self, local_ip, local_port, remote_ip, remote_port,
            failover=failover, **kwargs,
        )
        self.connections[key] = conn
        conn.open_active()
        return conn

    def install_connection(
        self,
        snapshot: TcpSnapshot,
        local_ip: Optional[Ipv4Address] = None,
        **options: Any,
    ) -> TcpConnection:
        """Materialise a :class:`~repro.tcp.connection.TcpSnapshot` here.

        This is the replica-reintegration primitive: a joiner adopts an
        established connection exported by the survivor, keyed under its
        own ``local_ip`` (the bridge translates addresses on the wire, so
        the peer never sees the difference).  Returns the live connection,
        already ESTABLISHED (or CLOSE_WAIT) with buffers reloaded.
        """
        if local_ip is None:
            ips = self.local_ips()
            if not ips:
                raise OSError(f"{self.node_name}: no local IP")
            local_ip = ips[0]
        key = (local_ip, snapshot.local_port, snapshot.remote_ip, snapshot.remote_port)
        if key in self.connections:
            raise OSError(f"{self.node_name}: connection {key} already exists")
        kwargs = dict(self.conn_defaults)
        kwargs.update(options)
        kwargs.setdefault("mss", snapshot.mss)
        kwargs.setdefault("send_buffer_size", snapshot.send_capacity)
        kwargs.setdefault("recv_buffer_size", snapshot.recv_capacity)
        kwargs.setdefault("min_rto", snapshot.min_rto)
        conn = TcpConnection(
            self,
            local_ip,
            snapshot.local_port,
            snapshot.remote_ip,
            snapshot.remote_port,
            failover=snapshot.failover,
            **kwargs,
        )
        conn.install_state(snapshot)
        self.connections[key] = conn
        self._lingering.pop(key, None)
        self.tracer.emit(
            self.sim.now, "tcp.installed", self.node_name,
            conn=str(conn), state=snapshot.state,
        )
        return conn

    # ------------------------------------------------------------------
    # segment demultiplexing
    # ------------------------------------------------------------------

    def receive_segment(
        self, segment: TcpSegment, src_ip: Ipv4Address, dst_ip: Ipv4Address
    ) -> None:
        key = (dst_ip, segment.dst_port, src_ip, segment.src_port)
        if self.spans.enabled:
            self.spans.flow_event(
                flow_key(src_ip, segment.src_port, dst_ip, segment.dst_port),
                "tcp.rx", self.sim.now, self.node_name,
                seq=segment.seq, size=len(segment.payload),
            )
        conn = self.connections.get(key)
        if conn is not None:
            conn.segment_arrived(segment, src_ip)
            return
        if segment.syn and not segment.has_ack:
            listener = self.listeners.get(segment.dst_port)
            if listener is not None and not listener.closed:
                if listener.pending >= listener.backlog:
                    return  # silently drop: client will retry
                self._accept_syn(listener, segment, src_ip, dst_ip)
                return
        if segment.rst:
            self._linger_rst(key, segment, src_ip, dst_ip)
            return
        if not segment.syn and self._linger_ack(key, segment, src_ip, dst_ip):
            return
        self._send_rst_for(segment, src_ip, dst_ip)

    def icmp_frag_needed(
        self,
        quoted_src: Ipv4Address,
        quoted_src_port: int,
        quoted_dst: Ipv4Address,
        quoted_dst_port: int,
        quoted_seq: int,
        mtu: int,
    ) -> bool:
        """RFC 1191 fragmentation-needed handling with RFC 5927 validation.

        The quoted header names the *outgoing* segment that allegedly hit
        a small-MTU hop, so the TCB is looked up with our address first.
        The quoted sequence must fall inside the currently-unacknowledged
        send range — an off-path attacker who only knows the 4-tuple
        cannot satisfy that check, so blind PMTUD probes cannot shrink a
        connection's MSS (the isolation break in PAPERS.md).
        """
        key = (quoted_src, quoted_src_port, quoted_dst, quoted_dst_port)
        conn = self.connections.get(key)
        if conn is None or not conn.apply_mtu_hint(mtu, quoted_seq):
            self.pmtud_rejected += 1
            self._m_pmtud_rej.inc()
            self.tracer.emit(
                self.sim.now, "tcp.pmtud_rejected", self.node_name,
                to=f"{quoted_dst}:{quoted_dst_port}", mtu=mtu,
            )
            return False
        self.pmtud_accepted += 1
        self._m_pmtud_ok.inc()
        return True

    def _accept_syn(
        self,
        listener: Listener,
        segment: TcpSegment,
        src_ip: Ipv4Address,
        dst_ip: Ipv4Address,
    ) -> None:
        if not segment.checksum_ok(src_ip, dst_ip):
            self.tracer.emit(
                self.sim.now, "tcp.bad_checksum", self.node_name, seg=repr(segment)
            )
            return
        kwargs = dict(self.conn_defaults)
        conn = TcpConnection(
            self,
            dst_ip,
            segment.dst_port,
            src_ip,
            segment.src_port,
            failover=listener.failover,
            **kwargs,
        )
        conn._listener = listener
        listener.pending += 1
        self.connections[conn.key] = conn
        conn.open_passive(segment)

    def connection_established(self, conn: TcpConnection) -> None:
        """Callback from a SYN_RCVD connection completing the handshake."""
        listener = getattr(conn, "_listener", None)
        if listener is not None:
            listener.pending = max(0, listener.pending - 1)
            if not listener.closed:
                listener.accept_queue.put(conn)

    def _send_rst_for(
        self, segment: TcpSegment, src_ip: Ipv4Address, dst_ip: Ipv4Address
    ) -> None:
        """RFC 793 reset generation for segments with no matching endpoint."""
        self.rsts_sent += 1
        self._m_rsts.inc()
        if segment.has_ack:
            rst = TcpSegment(
                src_port=segment.dst_port,
                dst_port=segment.src_port,
                seq=segment.ack,
                ack=0,
                flags=FLAG_RST,
                window=0,
            )
        else:
            rst = TcpSegment(
                src_port=segment.dst_port,
                dst_port=segment.src_port,
                seq=0,
                ack=segment.seq_end,
                flags=FLAG_RST | FLAG_ACK,
                window=0,
            )
        self.tracer.emit(
            self.sim.now, "tcp.rst_sent", self.node_name,
            to=f"{src_ip}:{segment.src_port}",
        )
        self.send_segment(rst, dst_ip, src_ip)

    # ------------------------------------------------------------------
    # transmission and bookkeeping
    # ------------------------------------------------------------------

    def send_segment(
        self, segment: TcpSegment, src_ip: Ipv4Address, dst_ip: Ipv4Address
    ) -> None:
        """Seal (checksum) and hand the segment to the host datapath."""
        sealed = segment.sealed(src_ip, dst_ip)
        self._m_tx.inc()
        self._m_tx_bytes.inc(len(sealed.payload))
        self.tracer.emit(
            self.sim.now, "tcp.tx", self.node_name,
            seg=repr(sealed), dst=str(dst_ip),
        )
        if self.spans.enabled:
            self.spans.flow_event(
                flow_key(src_ip, sealed.src_port, dst_ip, sealed.dst_port),
                "tcp.tx", self.sim.now, self.node_name,
                seq=sealed.seq, size=len(sealed.payload),
            )
        self._transmit(sealed, src_ip, dst_ip)

    def _linger_ack(
        self, key: ConnKey, segment: TcpSegment,
        src_ip: Ipv4Address, dst_ip: Ipv4Address,
    ) -> bool:
        """Answer a straggler for a recently-closed connection."""
        entry = self._lingering.get(key)
        if entry is None:
            return False
        expiry, snd_nxt, rcv_nxt, failover = entry
        if self.sim.now >= expiry:
            del self._lingering[key]
            return False
        if not segment.fin and not segment.payload:
            return True  # a stray pure ACK needs no answer, only no RST
        if segment.fin:
            # The peer is still waiting on our last ACK — restart the
            # quiet period, as TIME_WAIT restarts its 2·MSL timer.
            self._lingering[key] = (
                self.sim.now + self.linger_duration, snd_nxt, rcv_nxt, failover,
            )
        ack = TcpSegment(
            src_port=segment.dst_port,
            dst_port=segment.src_port,
            seq=snd_nxt,
            ack=rcv_nxt,
            flags=FLAG_ACK,
            window=0xFFFF,
        )
        self.linger_acks_sent += 1
        self.tracer.emit(
            self.sim.now, "tcp.linger_ack", self.node_name,
            to=f"{src_ip}:{segment.src_port}",
        )
        self.send_segment(ack, dst_ip, src_ip)
        return True

    def _linger_rst(
        self, key: ConnKey, segment: TcpSegment,
        src_ip: Ipv4Address, dst_ip: Ipv4Address,
    ) -> None:
        """RFC 5961 §3.2 applied to a lingering (TIME_WAIT) 4-tuple.

        A TCB retired to the linger table must keep the exact reset
        semantics it had while tabled: an exact-match RST (seq ==
        rcv_nxt) ends the quiet period — the same teardown the full TCB
        honoured in TIME_WAIT — while an in-window RST draws a challenge
        ACK so a genuine peer can re-assert itself.  The challenge is
        throttled per key with the connection-class budget
        (:attr:`TcpConnection.CHALLENGE_LIMIT` per
        :attr:`TcpConnection.CHALLENGE_WINDOW`); without the throttle
        the counter is the CVE-2016-5696 probe oracle, and TIME_WAIT
        endpoints were part of that attack surface too.  Out-of-window
        RSTs — and RSTs for unknown keys — stay silently dropped."""
        entry = self._lingering.get(key)
        if entry is None:
            return
        expiry, snd_nxt, rcv_nxt, _failover = entry
        if self.sim.now >= expiry:
            del self._lingering[key]
            self._linger_challenges.pop(key, None)
            return
        if segment.seq == rcv_nxt:
            del self._lingering[key]
            self._linger_challenges.pop(key, None)
            self.tracer.emit(
                self.sim.now, "tcp.linger_reset", self.node_name,
                key=f"{key[2]}:{key[3]}",
            )
            return
        if not seq_in_window(rcv_nxt, segment.seq, LINGER_WINDOW):
            return
        window_start, sent = self._linger_challenges.get(key, (-1.0, 0))
        if self.sim.now - window_start >= TcpConnection.CHALLENGE_WINDOW:
            window_start, sent = self.sim.now, 0
        if sent >= TcpConnection.CHALLENGE_LIMIT:
            self._linger_challenges[key] = (window_start, sent)
            return
        self._linger_challenges[key] = (window_start, sent + 1)
        self._m_challenge.inc()
        self.tracer.emit(
            self.sim.now, "tcp.challenge_ack", self.node_name,
            conn=f"timewait {key[0]}:{key[1]}<->{key[2]}:{key[3]}",
            reason="in-window-rst-timewait",
        )
        ack = TcpSegment(
            src_port=segment.dst_port,
            dst_port=segment.src_port,
            seq=snd_nxt,
            ack=rcv_nxt,
            flags=FLAG_ACK,
            window=LINGER_WINDOW,
        )
        self.send_segment(ack, dst_ip, src_ip)

    def retire_to_linger(self, conn: TcpConnection) -> None:
        """Move a TIME_WAIT TCB out of the connection table immediately.

        The :class:`LingerTable` *is* this stack's TIME_WAIT store: it
        answers retransmitted FINs/data with a pure ACK and blocks
        same-remote port reuse until its window expires.  Keeping the
        full TCB in the connection table for 2·MSL on top of that would
        double-count the quiet period — under pool reconnect churn the
        ephemeral range fills with dead-but-tabled connections and the
        exhaustion error blames "live connections" for ports that are
        merely cooling down.  Retiring at TIME_WAIT entry leaves one
        consistent window (``linger_duration``) and one honest
        diagnostic ("lingering after close")."""
        existing = self.connections.get(conn.key)
        if existing is not conn:
            return
        del self.connections[conn.key]
        self._lingering[conn.key] = (
            self.sim.now + self.linger_duration,
            conn.snd_max,
            conn.rcv_nxt,
            conn.failover,
        )

    def deregister(self, conn: TcpConnection) -> None:
        existing = self.connections.get(conn.key)
        if existing is conn:
            del self.connections[conn.key]
            if not conn.reset_received:
                # Clean close: keep answering stragglers for a while.
                self._lingering[conn.key] = (
                    self.sim.now + self.linger_duration,
                    conn.snd_max,
                    conn.rcv_nxt,
                    conn.failover,
                )

    def rebind_lingering(
        self,
        old_ip: Ipv4Address,
        new_ip: Ipv4Address,
        covers: Callable[[int, bool], bool],
    ) -> None:
        """Re-home TIME_WAIT-style records of failover connections.

        A retired TCB is no longer in the connection table when a
        takeover re-keys it, but its stragglers arrive addressed to the
        taken-over IP afterwards; without moving the record, a
        retransmitted FIN right after failover would draw a RST instead
        of the linger ACK (the §2 no-client-reset rule)."""
        for key in [k for k in self._lingering if k[0] == old_ip]:
            entry = self._lingering[key]
            if covers(key[1], entry[3]):
                self._lingering[(new_ip, key[1], key[2], key[3])] = (
                    self._lingering.pop(key)
                )

    def rebind_local_ip(self, old_ip: Ipv4Address, new_ip: Ipv4Address) -> None:
        """Re-home every TCB from ``old_ip`` to ``new_ip`` (IP takeover)."""
        moving = [
            conn for key, conn in list(self.connections.items()) if key[0] == old_ip
        ]
        for conn in moving:
            del self.connections[conn.key]
            conn.rebind_local_ip(new_ip)
            self.connections[conn.key] = conn
        # Stragglers for connections that closed before the takeover now
        # arrive addressed to the taken-over IP; re-home their records too.
        for key in [k for k in self._lingering if k[0] == old_ip]:
            self._lingering[(new_ip, key[1], key[2], key[3])] = self._lingering.pop(key)

    def established_count(self) -> int:
        return sum(
            1 for c in self.connections.values() if c.state == TcpState.ESTABLISHED
        )
