"""Retransmission-timeout estimation (Jacobson/Karn, RFC 6298 shape).

Period-correct behaviour matters for the failover experiments: after the
primary fails, every segment lost during the ARP window ``T`` is recovered
by ordinary retransmission, so the client-observed stall is governed by
this estimator.
"""

from __future__ import annotations

from typing import Optional


class RtoEstimator:
    """Smoothed RTT estimator with exponential backoff."""

    def __init__(
        self,
        initial_rto: float = 1.0,
        min_rto: float = 0.2,
        max_rto: float = 60.0,
        alpha: float = 0.125,
        beta: float = 0.25,
        k: float = 4.0,
    ):
        self.initial_rto = initial_rto
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.alpha = alpha
        self.beta = beta
        self.k = k
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self._backoff = 1
        self.samples_taken = 0

    def add_sample(self, rtt: float) -> None:
        """Record an RTT measurement from a non-retransmitted segment.

        Karn's rule — never sampling retransmitted segments — is enforced by
        the caller (:class:`repro.tcp.connection.TcpConnection` only probes
        segments sent exactly once).
        """
        if rtt < 0:
            raise ValueError("negative RTT sample")
        self.samples_taken += 1
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2
        else:
            self.rttvar = (1 - self.beta) * self.rttvar + self.beta * abs(self.srtt - rtt)
            self.srtt = (1 - self.alpha) * self.srtt + self.alpha * rtt
        self._backoff = 1

    def on_timeout(self) -> None:
        """Exponential backoff after a retransmission timeout."""
        self._backoff = min(self._backoff * 2, 64)

    @property
    def backoff(self) -> int:
        return self._backoff

    @property
    def rto(self) -> float:
        if self.srtt is None:
            base = self.initial_rto
        else:
            base = self.srtt + self.k * (self.rttvar or 0.0)
        base = max(self.min_rto, min(self.max_rto, base))
        return min(self.max_rto, base * self._backoff)
