"""repro — Transparent TCP Connection Failover (DSN 2003), reproduced.

A deterministic discrete-event reproduction of R. R. Koch, S. Hortikar,
L. E. Moser and P. M. Melliar-Smith, *Transparent TCP Connection
Failover* (DSN 2003): a bridge sublayer between TCP and IP that lets a
TCP server endpoint fail over from a primary to a secondary replica at
any point in a connection's lifetime, transparently to an unmodified
client and an unmodified (actively replicated, deterministic) server
application.

Packages:

* :mod:`repro.sim` — discrete-event kernel (clock, processes, RNG, traces);
* :mod:`repro.net` — Ethernet (shared medium, promiscuous NICs), ARP,
  IP, routers, WAN links, hosts with a CPU cost model;
* :mod:`repro.tcp` — a full userspace TCP (RFC 793/879 behaviours);
* :mod:`repro.failover` — the paper's contribution: primary/secondary
  bridges, Δseq, output-queue matching, min-ACK/min-window merging,
  fault detector, IP takeover;
* :mod:`repro.apps` — echo/bulk/request-reply/store/FTP applications;
* :mod:`repro.harness` — calibrated testbeds and one runner per paper
  table/figure.

Quick taste::

    from repro.harness.topology import LanTestbed
    from repro.apps.echo import echo_server, echo_once
    from repro.sim.process import spawn

    bed = LanTestbed(replicated=True, failover_ports=[7])
    bed.start_detectors()
    bed.pair.run_app(lambda host: echo_server(host, 7))

    def client():
        reply = yield from echo_once(bed.client, bed.server_ip, 7, b"hi")
        assert reply == b"echo:hi"

    spawn(bed.sim, client(), "client")
    bed.sim.schedule(0.001, bed.pair.crash_primary)  # survives this
    bed.run(until=5.0)
"""

__version__ = "0.1.0"

__all__ = ["__version__"]
