"""Scripted and adaptive attack strategies.

Each strategy is a generator (a simulator process) driving an
:class:`~repro.adversary.attacker.AttackerHost` against one victim
connection or service.  The attacker's knowledge model is strict:

* it knows the victim's **4-tuple** (addresses and ports) — the
  standard off-path assumption;
* it does **not** know sequence numbers.  Sweeps start from a coarse
  2^20-wide bracket around the true value — the leak granularity the
  off-path literature grants the attacker (e.g. a coarse counter or
  timing side channel) — and must narrow it themselves;
* the *only* fine-grained side channel is the one explicitly modeled:
  the victim's ``tcp.challenge_acks`` metrics counter, which the
  ``seq-infer`` strategy reads between probe batches (the
  CVE-2016-5696 pattern: a globally observable challenge-ACK count
  turns RFC 5961's courtesy into an oracle).

All randomness flows through the context's rng stream; a strategy
replays bit-for-bit from the cell seed.

Position semantics: ``"client"`` attacks the client end (spoofing the
service), ``"service"`` attacks the serving replica (spoofing the
client).  The two non-segment strategies reuse the axis for their two
natural variants: ``arp-race`` runs *reactive* (race the takeover
announcement) at position ``"client"`` and *preemptive* (periodic
claims against the live owner) at ``"service"``; ``flow-poison`` runs
*victim-flow spoofing* at ``"client"`` and *table-fill* at
``"service"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Optional, Tuple

from repro.adversary.attacker import AttackerHost
from repro.net.addresses import Ipv4Address
from repro.sim.engine import Simulator
from repro.sim.trace import TraceRecord
from repro.tcp.seqnum import seq_add, seq_diff

__all__ = [
    "STRATEGIES",
    "AttackContext",
    "SWEEP_PROBES",
    "INFER_BUDGET",
    "INFER_MIN_ERROR",
]

# Sweep geometry: a 2^20 bracket swept in 64 steps of 16 KiB.
BRACKET = 1 << 20
SWEEP_STEP = BRACKET // 64
SWEEP_PROBES = 64

# Sequence-inference geometry: block sweep at 32 KiB (≤ the victim's
# receive window, so the true window cannot fall between probes), then
# binary-search the window's left edge down to 512 bytes.
INFER_BLOCK = 32768
INFER_BUDGET = 56
INFER_MIN_ERROR = 512

PMTUD_MTUS = (68, 296, 552)


@dataclass
class AttackContext:
    """Everything a strategy may consult, resolved by the matrix runner.

    ``victim`` returns ``(node_name, connection)`` for the current
    position — the connection object stands in for the coarse bracket
    leak (strategies only read one sequence value from it, at burst
    start, to center their bracket).  ``challenge_counter`` returns the
    victim's challenge-ACK metrics counter (the modeled side channel).
    """

    sim: Simulator
    rng: Any
    position: str
    client_ip: Ipv4Address
    service_ip: Ipv4Address
    service_port: int
    client_port: Callable[[], Optional[int]]
    victim: Callable[[], Tuple[str, Optional[Any]]]
    challenge_counter: Callable[[str], Optional[Any]] = lambda victim: None
    results: Dict[str, Any] = field(default_factory=dict)
    probe_gap: float = 0.002
    # dispatcher-cell extras
    service: Optional[Any] = None
    victim_flows: Dict[Tuple[int, int], str] = field(default_factory=dict)


def _endpoints(
    ctx: AttackContext,
) -> Optional[Tuple[Ipv4Address, int, Ipv4Address, int]]:
    """(src_ip, src_port, dst_ip, dst_port) for forged segments."""
    cport = ctx.client_port()
    if cport is None:
        return None
    if ctx.position == "client":
        return (ctx.service_ip, ctx.service_port, ctx.client_ip, cport)
    return (ctx.client_ip, cport, ctx.service_ip, ctx.service_port)


def _bracket_start(rng: Any, center: int, step: int) -> int:
    """A bracket start below ``center``, never step-aligned with it.

    The sweep must model a *blind* attacker: landing a probe exactly on
    the true sequence number would be a legitimate RFC 793 teardown, not
    an isolation failure, so the offset is de-aligned from the step.
    """
    offset = rng.randrange(1, BRACKET)
    if offset % step == 0:
        offset -= 1
    return seq_add(center, -offset)


def rst_sweep(att: AttackerHost, ctx: AttackContext) -> Generator:
    """Blind reset: forged RSTs sweeping the bracket (RFC 5961 target)."""
    att.start_attack("rst-sweep", position=ctx.position)
    try:
        ep = _endpoints(ctx)
        victim, conn = ctx.victim()
        if ep is None or conn is None:
            yield 0.001
            return
        start = _bracket_start(ctx.rng, conn.rcv_nxt, SWEEP_STEP)
        for i in range(SWEEP_PROBES):
            att.spoof_rst(ep[0], ep[1], ep[2], ep[3],
                          seq_add(start, i * SWEEP_STEP), victim)
            yield ctx.probe_gap
    finally:
        att.finish_attack("rst-sweep")


def syn_sweep(att: AttackerHost, ctx: AttackContext) -> Generator:
    """Blind SYN: a SYN on a synchronized connection must draw a
    challenge ACK, never a reset or a re-open."""
    att.start_attack("syn-sweep", position=ctx.position)
    try:
        ep = _endpoints(ctx)
        victim, conn = ctx.victim()
        if ep is None or conn is None:
            yield 0.001
            return
        start = _bracket_start(ctx.rng, conn.rcv_nxt, SWEEP_STEP)
        for i in range(SWEEP_PROBES):
            att.spoof_syn(ep[0], ep[1], ep[2], ep[3],
                          seq_add(start, i * SWEEP_STEP), victim)
            yield ctx.probe_gap
    finally:
        att.finish_attack("syn-sweep")


def fin_ack_sweep(att: AttackerHost, ctx: AttackContext) -> Generator:
    """Forged FIN|ACK: attacks both the teardown path (FIN) and the
    send-side accounting (a blind ACK that advanced ``snd_una`` would
    discard unacknowledged bytes and stall the stream)."""
    att.start_attack("fin-ack-sweep", position=ctx.position)
    try:
        ep = _endpoints(ctx)
        victim, conn = ctx.victim()
        if ep is None or conn is None:
            yield 0.001
            return
        start = _bracket_start(ctx.rng, conn.rcv_nxt, SWEEP_STEP)
        for i in range(SWEEP_PROBES):
            att.spoof_fin_ack(
                ep[0], ep[1], ep[2], ep[3],
                seq_add(start, i * SWEEP_STEP),
                ctx.rng.randrange(1 << 32),
                victim,
            )
            yield ctx.probe_gap
    finally:
        att.finish_attack("fin-ack-sweep")


def pmtud_probe(att: AttackerHost, ctx: AttackContext) -> Generator:
    """Forged ICMP frag-needed quoting guessed outgoing segments —
    the IP-address-sharing isolation break: an unvalidated quote lets
    an off-path attacker clamp any co-hosted connection's MSS."""
    att.start_attack("pmtud-probe", position=ctx.position)
    try:
        cport = ctx.client_port()
        victim, conn = ctx.victim()
        if cport is None or conn is None:
            yield 0.001
            return
        if ctx.position == "client":
            icmp_dst = ctx.client_ip
            quoted = (ctx.client_ip, cport, ctx.service_ip, ctx.service_port)
        else:
            icmp_dst = ctx.service_ip
            quoted = (ctx.service_ip, ctx.service_port, ctx.client_ip, cport)
        start = _bracket_start(ctx.rng, conn.snd_una, SWEEP_STEP)
        for i in range(SWEEP_PROBES):
            att.spoof_frag_needed(
                icmp_dst, quoted[0], quoted[1], quoted[2], quoted[3],
                seq_add(start, i * SWEEP_STEP),
                PMTUD_MTUS[i % len(PMTUD_MTUS)],
                victim,
            )
            yield ctx.probe_gap
    finally:
        att.finish_attack("pmtud-probe")


def _infer_probe(
    att: AttackerHost,
    ctx: AttackContext,
    ep: Tuple[Ipv4Address, int, Ipv4Address, int],
    victim: str,
    counter: Any,
    candidate: int,
) -> Generator:
    """One inference probe: a 3-RST batch, then read the counter delta."""
    before = counter.value
    for _ in range(3):
        att.spoof_rst(ep[0], ep[1], ep[2], ep[3], candidate, victim)
        yield 0.0015
    yield 0.004
    return counter.value > before


def seq_infer(att: AttackerHost, ctx: AttackContext) -> Generator:
    """Adaptive sequence inference through the challenge-ACK counter.

    Phase 1 sweeps the bracket in window-sized blocks until a probe
    draws a challenge (candidate landed in the receive window); phase 2
    binary-searches the window's left edge.  RFC 5961 §10 rate limiting
    is the defense under test: with the limit in place the counter
    starves mid-search and the estimate stays coarse
    (``results["seq_error"]`` ≥ :data:`INFER_MIN_ERROR`)."""
    att.start_attack("seq-infer", position=ctx.position)
    try:
        ep = _endpoints(ctx)
        victim, conn = ctx.victim()
        counter = ctx.challenge_counter(victim)
        if ep is None or conn is None or counter is None:
            yield 0.001
            return
        true_nxt = conn.rcv_nxt  # scoring reference, never used to aim
        offset = ctx.rng.randrange(1 << 17, BRACKET - (1 << 17))
        cursor = seq_add(true_nxt, -offset)
        probes = 0
        hit: Optional[int] = None
        for _ in range(BRACKET // INFER_BLOCK):
            if probes >= INFER_BUDGET:
                break
            probes += 1
            in_window = yield from _infer_probe(
                att, ctx, ep, victim, counter, cursor
            )
            if in_window:
                hit = cursor
                break
            cursor = seq_add(cursor, INFER_BLOCK)
        estimate = cursor if hit is None else hit
        if hit is not None:
            span = INFER_BLOCK
            edge = hit
            while span > INFER_MIN_ERROR and probes < INFER_BUDGET:
                span //= 2
                probes += 1
                candidate = seq_add(edge, -span)
                in_window = yield from _infer_probe(
                    att, ctx, ep, victim, counter, candidate
                )
                if in_window:
                    edge = candidate
            estimate = edge
        error = abs(seq_diff(estimate, true_nxt))
        ctx.results["seq_probes"] = probes
        ctx.results["seq_error"] = error
        att.tracer.emit(
            att.sim.now, "adversary.infer_result", att.host.name,
            probes=probes, error=error,
        )
    finally:
        att.finish_attack("seq-infer")


def arp_race(att: AttackerHost, ctx: AttackContext) -> Generator:
    """Gratuitous-ARP race for the service address.

    Position ``"client"``: *reactive* — race the takeover announcement,
    claiming the VIP microseconds after the secondary does (the window
    the takeover guard must cover).  Position ``"service"``:
    *preemptive* — periodic forged claims against the live owner,
    attacking the step-down fencing machinery itself."""
    att.start_attack("arp-race", position=ctx.position)
    try:
        vip = ctx.service_ip
        if ctx.position == "service":
            for _ in range(25):
                att.claim_ip(vip, victim="primary")
                yield 0.02
            return
        fired = []

        def on_record(record: TraceRecord) -> None:
            if record.category == "takeover.announced" and not fired:
                fired.append(record.time)
                ctx.sim.schedule(60e-6, race)

        def race() -> None:
            att.claim_ip(vip, victim="secondary")

        already_announced = any(
            r.category == "takeover.announced" for r in att.tracer.records
        )
        if not already_announced:
            att.tracer.subscribe(on_record)
            for _ in range(60):
                if fired:
                    break
                yield 0.01
        # Follow-up claims: inside the guard window when we raced the
        # announcement, against the settled owner when the takeover beat
        # us here — the claimant allowlist must hold either way.
        for _ in range(3):
            att.claim_ip(vip, victim="secondary")
            yield 0.005
    finally:
        att.finish_attack("arp-race")


def flow_poison(att: AttackerHost, ctx: AttackContext) -> Generator:
    """Dispatcher flow-table poisoning.

    Position ``"client"``: forged initial SYNs bearing a *live* victim
    flow's 4-tuple — an unhardened dispatcher re-steers the pin and
    tears the victim off its shard.  Position ``"service"``: table-fill
    from fabricated sources — an unbounded table evicts or starves
    legitimate pins."""
    att.start_attack("flow-poison", position=ctx.position)
    try:
        if ctx.service is None:
            yield 0.001
            return
        vip, port = ctx.service_ip, ctx.service_port
        if ctx.position == "client":
            flows = sorted(ctx.victim_flows)
            if not flows:
                yield 0.001
                return
            for _ in range(12):
                for ip_value, cport in flows:
                    att.spoof_syn(
                        Ipv4Address(ip_value), cport, vip, port,
                        ctx.rng.randrange(1 << 32), victim="dispatcher",
                    )
                    yield 0.004
        else:
            budget = 3 * ctx.service.max_flows
            for i in range(budget):
                fake_ip = Ipv4Address(0x0A09_0000 + 1 + i)
                att.spoof_syn(
                    fake_ip, 30_000 + i, vip, port,
                    ctx.rng.randrange(1 << 32), victim="dispatcher",
                )
                yield 0.002
    finally:
        att.finish_attack("flow-poison")


STRATEGIES: Dict[str, Callable[[AttackerHost, AttackContext], Generator]] = {
    "rst-sweep": rst_sweep,
    "syn-sweep": syn_sweep,
    "fin-ack-sweep": fin_ack_sweep,
    "pmtud-probe": pmtud_probe,
    "seq-infer": seq_infer,
    "arp-race": arp_race,
    "flow-poison": flow_poison,
}
