"""Attack matrix: strategy × attacker position × lifetime fraction.

The chaos matrix (:mod:`repro.harness.chaos`) sweeps *faults*; this
matrix sweeps *adversaries*.  Every cell runs a seeded topology with an
off-path attacker attached, fires one attack strategy at a chosen
fraction of the connection's lifetime, and checks the isolation
invariants on top of the usual stream/liveness/agreement set.  Every
bridge cell also crashes the primary mid-transfer, so every attack
plays out against a connection that *will* fail over — the adversarial
and failover machinery are exercised together, not in isolation.

Determinism contract: all attacker randomness comes from registry
streams derived from the cell seed, so a cell replays bit-for-bit —
:meth:`AttackResult.fingerprint` is a canonical string that must be
byte-identical across runs of the same spec (CI runs the shard twice
and ``cmp``'s the artifacts).

Cell topology by strategy:

* segment strategies (``rst-sweep``, ``syn-sweep``, ``fin-ack-sweep``,
  ``pmtud-probe``, ``seq-infer``, ``arp-race``) run on an ``AttackLan``
  — the chaos LAN plus an attacker station — against one bulk upload
  through the replicated pair;
* ``flow-poison`` runs on a small :class:`~repro.cluster.fleet.
  ShardedFleet` with the attacker on the front LAN, poisoning the
  dispatcher's flow table under a closed-loop workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.adversary.attacker import AttackerHost
from repro.adversary.strategies import (
    INFER_BUDGET,
    INFER_MIN_ERROR,
    STRATEGIES,
    AttackContext,
)
from repro.apps.bulk import pattern_bytes
from repro.harness.invariants import InvariantChecker, Violation
from repro.net.addresses import Ipv4Address, MacAddress
from repro.net.host import Host
from repro.sim.process import spawn
from repro.tcp.seqnum import seq_add
from repro.tcp.socket_api import ListeningSocket, SimSocket

# Same wrap-crossing ISS pin as the chaos matrix: every adversarial
# cell also exercises sequence arithmetic across 2^32.
CLIENT_ISS = 0xFFFF_F000
STREAM_START = seq_add(CLIENT_ISS, 1)

PORT = 80
# Big enough that a ~0.13 s attack burst overlaps the transfer (and the
# mid-transfer crash + takeover) instead of outliving it.
DEFAULT_SIZE = 2_000_000

#: Every bridge cell crashes the primary at this fraction of the clean
#: transfer, so "early" attacks hit the original primary, "midpoint"
#: attacks straddle the takeover, and "late" attacks hit the secondary
#: serving the failed-over connection.
CRASH_FRACTION = 0.45

ATTACK_FRACTIONS: Dict[str, float] = {
    "early": 0.1,
    "midpoint": 0.5,
    "late": 0.8,
}

POSITIONS = ("client", "service")

# Dispatcher-cell geometry (flow-poison): a small fleet, a short
# closed-loop workload, and a deliberately tight flow table so the
# table-fill attack actually reaches capacity.
FLEET_SHARDS = 2
FLEET_CLIENTS = 2
FLEET_SESSIONS = 6
FLEET_RAMP = 0.05
FLEET_HOLD = 0.9
FLEET_MAX_FLOWS = 64
FLEET_FLOW_IDLE = 0.2
ATTACKER_FRONT_IP = Ipv4Address("10.0.0.66")


@dataclass(frozen=True)
class AttackSpec:
    """One cell of the attack matrix; hashable, printable, re-runnable."""

    strategy: str
    position: str
    fraction: str
    seed: int = 1
    size: int = DEFAULT_SIZE

    def __str__(self) -> str:
        return (
            f"{self.strategy}@{self.position}/{self.fraction}"
            f" seed={self.seed} size={self.size}"
        )


@dataclass
class AttackResult:
    """Everything a cell needs to be diagnosed, replayed and compared."""

    spec: AttackSpec
    violations: List[Violation] = field(default_factory=list)
    injections: int = 0
    injections_by_kind: Dict[str, int] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    results: Dict[str, object] = field(default_factory=dict)
    acked: int = 0
    delivered: int = 0
    finished: bool = False
    failed_over: bool = False
    duration: float = 0.0
    incident: str = ""
    tracer: object = field(default=None, repr=False, compare=False)

    @property
    def ok(self) -> bool:
        return not self.violations

    def fingerprint(self) -> str:
        """Canonical byte-stable summary for replay comparison."""
        parts = [str(self.spec), f"injections={self.injections}"]
        parts += [f"inj.{k}={v}" for k, v in sorted(self.injections_by_kind.items())]
        parts += [f"{k}={v}" for k, v in sorted(self.counters.items())]
        parts += [f"res.{k}={v}" for k, v in sorted(self.results.items())]
        parts.append(f"violations={len(self.violations)}")
        parts += [str(v) for v in self.violations]
        parts += [
            f"delivered={self.delivered}",
            f"finished={self.finished}",
            f"failed_over={self.failed_over}",
            f"duration={self.duration:.9f}",
        ]
        return "|".join(parts)

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        lines = [
            f"[{status}] {self.spec}: injections={self.injections}"
            f" failed_over={self.failed_over} delivered={self.delivered}"
            f" t={self.duration:.3f}"
        ]
        lines += [f"  {v}" for v in self.violations]
        if not self.ok and self.incident:
            lines.append("  incident report:")
            lines += [f"    {line}" for line in self.incident.splitlines()]
        return "\n".join(lines)


def attack_matrix(
    seeds=(1,),
    strategies=tuple(STRATEGIES),
    positions=POSITIONS,
    fractions=tuple(ATTACK_FRACTIONS),
    size: int = DEFAULT_SIZE,
) -> List[AttackSpec]:
    """The full grid: strategy × position × lifetime fraction × seed."""
    return [
        AttackSpec(strategy=st, position=p, fraction=f, seed=s, size=size)
        for st in strategies
        for p in positions
        for f in fractions
        for s in seeds
    ]


# ----------------------------------------------------------------------
# bridge cells (AttackLan)
# ----------------------------------------------------------------------

_CLEAN_CACHE: Dict[Tuple[int, int], float] = {}


def _clean_duration(seed: int, size: int) -> float:
    """Attack-free, fault-free transfer time — anchors burst/crash times."""
    key = (seed, size)
    if key not in _CLEAN_CACHE:
        result = _bridge_cell(
            AttackSpec("none", "client", "early", seed=seed, size=size),
            until=60.0,
        )
        _CLEAN_CACHE[key] = result.duration
    return _CLEAN_CACHE[key]


def _bridge_cell(spec: AttackSpec, until: float = 30.0) -> AttackResult:
    # Imported here: repro.adversary must stay importable without the
    # test tree, but the topology builders live in tests/util.
    from tests.util import CLIENT_IP, AttackLan

    lan = AttackLan(seed=spec.seed, failover_ports=(PORT,))
    lan.client.tcp.choose_iss = lambda: CLIENT_ISS
    lan.start_detectors()
    blob = pattern_bytes(spec.size)
    result = AttackResult(spec=spec)
    attacking = spec.strategy != "none"

    received: Dict[str, bytearray] = {}
    client_state: Dict[str, object] = {}

    def server_app(host):
        def app():
            listening = ListeningSocket.listen(host, PORT)
            sock = yield from listening.accept()
            data = received.setdefault(host.name, bytearray())
            while True:
                chunk = yield from sock.recv(65536)
                if not chunk:
                    break
                data.extend(chunk)
            yield from sock.close_and_wait()

        return app()

    def client():
        sock = SimSocket.connect(lan.client, lan.server_ip, PORT, min_rto=0.05)
        client_state["sock"] = sock
        yield from sock.wait_connected()
        yield from sock.send_all(blob)
        yield from sock.close_and_wait()

    # -- attacker wiring -------------------------------------------------
    def client_port() -> Optional[int]:
        sock = client_state.get("sock")
        return sock.conn.local_port if sock is not None else None

    def serving_host() -> Host:
        return lan.pair.secondary if lan.pair.failed_over else lan.pair.primary

    def victim():
        if spec.position == "client":
            sock = client_state.get("sock")
            return "client", (sock.conn if sock is not None else None)
        host = serving_host()
        cport = client_port()
        conn = None
        if cport is not None:
            conn = host.tcp.connections.get(
                (lan.server_ip, PORT, CLIENT_IP, cport)
            )
        return host.name, conn

    ctx = AttackContext(
        sim=lan.sim,
        rng=lan.rng.stream("adversary.strategy"),
        position=spec.position,
        client_ip=CLIENT_IP,
        service_ip=lan.server_ip,
        service_port=PORT,
        client_port=client_port,
        victim=victim,
        challenge_counter=lambda name: lan.metrics.counter(
            "tcp.challenge_acks", host=name
        ),
    )

    checker: InvariantChecker = lan.checker
    process = None

    def burst():
        yield burst_at
        _name, conn = victim()
        floor_mss = conn.mss if conn is not None else None
        yield from STRATEGIES[spec.strategy](lan.attacker, ctx)
        # Mid-run isolation checks, while the transfer should still be
        # live (a closed-because-finished connection is not a violation).
        label = str(spec)
        post_name, post_conn = victim()
        if post_conn is not None and not process.done_event.triggered:
            checker.check_connection_survived(
                post_conn, f"{label} [{post_name}]", now=lan.sim.now
            )
        if (
            spec.strategy == "pmtud-probe"
            and post_conn is not None
            and floor_mss is not None
        ):
            checker.check_pmtud_isolation(
                post_conn, floor_mss, label, now=lan.sim.now
            )

    if attacking:
        t_clean = _clean_duration(spec.seed, spec.size)
        lan.plane.crash_at(lan.primary, max(1e-4, CRASH_FRACTION * t_clean))
        burst_at = max(2e-4, ATTACK_FRACTIONS[spec.fraction] * t_clean)

    lan.pair.run_app(server_app)
    process = spawn(lan.sim, client(), "attack-client")
    if attacking:
        spawn(lan.sim, burst(), "attack-burst")
    lan.sim.run_until(lambda: process.done_event.triggered, timeout=until)
    result.finished = process.done_event.triggered
    result.duration = lan.sim.now
    lan.sim.run(until=lan.sim.now + 0.3)  # let in-flight events settle

    # -- invariants ------------------------------------------------------
    if not result.finished:
        checker.violations.append(Violation(
            lan.sim.now, "liveness",
            f"client did not finish within {until}s of simulated time",
        ))
    result.failed_over = lan.pair.failed_over
    surviving = serving_host().name
    delivered = bytes(received.get(surviving, b""))
    checker.check_stream_prefix(surviving, blob, delivered, now=lan.sim.now)
    sock = client_state.get("sock")
    acked_seq = sock.conn.snd_una if sock is not None else None
    result.acked = checker.check_acked_bytes_delivered(
        blob, acked_seq, STREAM_START, len(delivered), now=lan.sim.now
    )
    result.delivered = len(delivered)
    if result.finished and len(delivered) != spec.size:
        checker.violations.append(Violation(
            lan.sim.now, "completeness",
            f"transfer finished but {surviving} delivered"
            f" {len(delivered)}/{spec.size} bytes",
        ))
    lan.finish_checks()
    checker.check_no_spoofed_teardown()
    if spec.strategy == "seq-infer":
        result.results = dict(ctx.results)
        checker.check_seq_not_inferred(
            int(ctx.results.get("seq_error", 1 << 31)),
            int(ctx.results.get("seq_probes", 0)),
            INFER_BUDGET,
            min_error=INFER_MIN_ERROR,
            now=lan.sim.now,
        )
    result.violations = checker.violations

    # -- accounting ------------------------------------------------------
    result.injections = lan.attacker.injections
    result.injections_by_kind = dict(lan.attacker.injections_by_kind)
    for host in (lan.client, lan.primary, lan.secondary):
        name = host.name
        result.counters[f"challenge_acks.{name}"] = lan.metrics.counter(
            "tcp.challenge_acks", host=name
        ).value
        result.counters[f"pmtud_rejected.{name}"] = host.tcp.pmtud_rejected
        result.counters[f"pmtud_accepted.{name}"] = host.tcp.pmtud_accepted
        result.counters[f"arp_ignored.{name}"] = (
            host.eth_interface.arp.gratuitous_ignored
        )
    result.counters["bridge.rsts_ignored"] = getattr(
        lan.pair.primary_bridge, "rsts_ignored", 0
    )

    _attach_incident(result, lan.tracer)
    return result


# ----------------------------------------------------------------------
# dispatcher cells (ShardedFleet)
# ----------------------------------------------------------------------


def _dispatcher_cell(spec: AttackSpec, until: float = 30.0) -> AttackResult:
    from repro.cluster.fleet import ShardedFleet
    from repro.workload.distributions import Fixed
    from repro.workload.generator import ClosedLoopWorkload

    fleet = ShardedFleet(
        shards=FLEET_SHARDS,
        clients=FLEET_CLIENTS,
        seed=spec.seed,
        record_traces=True,
        enable_metrics=True,
        detector_interval=0.005,
        detector_timeout=0.020,
    )
    service = fleet.service
    service.max_flows = FLEET_MAX_FLOWS
    service.flow_idle_timeout = FLEET_FLOW_IDLE
    fleet.run_reply_service()
    fleet.start_detectors()
    checker = fleet.attach_invariant_checker(
        InvariantChecker(tracer=fleet.tracer)
    )
    result = AttackResult(spec=spec)

    station = Host(
        fleet.sim, "attacker", MacAddress(0x0200_00AA_00F9),
        tracer=fleet.tracer, rng=fleet.rng.stream("host.attacker"),
    )
    station.attach_ethernet(fleet.front_segment, ATTACKER_FRONT_IP)
    station.eth_interface.arp.prime(fleet.virtual_ip, fleet.dispatcher.nic.mac)
    attacker = AttackerHost(station, fleet.rng.stream("adversary.attacker"))

    workload = ClosedLoopWorkload(
        fleet.clients, fleet.virtual_ip, fleet.service_port, fleet.rng,
        sessions=FLEET_SESSIONS, reply_sizes=Fixed(64),
        think_times=Fixed(0.005), ramp=FLEET_RAMP, hold_for=FLEET_HOLD,
    )
    t_clean = FLEET_RAMP + FLEET_HOLD
    burst_at = max(2e-4, ATTACK_FRACTIONS[spec.fraction] * t_clean)
    fleet.sim.schedule(
        CRASH_FRACTION * t_clean, fleet.shards[0].pair.crash_primary
    )

    clients_by_ip = {c.ip.primary_address().value: c for c in fleet.clients}

    ctx = AttackContext(
        sim=fleet.sim,
        rng=fleet.rng.stream("adversary.strategy"),
        position=spec.position,
        client_ip=fleet.clients[0].ip.primary_address(),
        service_ip=fleet.virtual_ip,
        service_port=fleet.service_port,
        client_port=lambda: None,
        victim=lambda: ("dispatcher", None),
        service=service,
    )

    def live_pins(expected: Dict[Tuple[int, int], str]) -> Dict:
        """Pins whose client connection is still open — evicting a flow
        whose session already closed is correct idle cleanup, not
        poisoning."""
        live = {}
        for (ip_value, port), shard_id in expected.items():
            host = clients_by_ip.get(ip_value)
            if host is None:
                continue
            conn = host.tcp.connections.get(
                (Ipv4Address(ip_value), port,
                 fleet.virtual_ip, fleet.service_port)
            )
            if conn is not None and conn.state.value == "ESTABLISHED":
                live[(ip_value, port)] = shard_id
        return live

    def burst():
        yield burst_at
        expected: Dict[Tuple[int, int], str] = {}
        for _sid, (ip, port) in sorted(workload.stats.session_flows.items()):
            slot = service.flows.slot_of((ip.value, port))
            if slot >= 0:
                expected[(ip.value, port)] = service.flows.shard_at(slot)
        ctx.victim_flows = dict(expected)
        yield from STRATEGIES["flow-poison"](attacker, ctx)
        checker.check_flow_isolation(
            service, live_pins(expected), now=fleet.sim.now
        )

    workload.start()
    spawn(fleet.sim, burst(), "attack-burst")
    fleet.sim.run_until(lambda: workload.complete, timeout=until)
    result.finished = workload.complete
    result.duration = fleet.sim.now
    fleet.sim.run(until=fleet.sim.now + 0.3)

    stats = workload.stats
    if not result.finished:
        checker.violations.append(Violation(
            fleet.sim.now, "liveness",
            f"workload did not complete within {until}s of simulated time",
        ))
    if stats.sessions_failed:
        checker.violations.append(Violation(
            fleet.sim.now, "attack-burst-survival",
            f"{stats.sessions_failed} session(s) failed under flow-table"
            f" poisoning: {stats.failures}",
        ))
    if stats.corrupt_replies:
        checker.violations.append(Violation(
            fleet.sim.now, "stream-prefix",
            f"{stats.corrupt_replies} corrupt replies under poisoning",
        ))
    checker.check_no_spoofed_teardown()
    checker.check_replica_agreement()
    result.violations = checker.violations

    result.failed_over = fleet.shards[0].pair.failed_over
    result.injections = attacker.injections
    result.injections_by_kind = dict(attacker.injections_by_kind)
    result.delivered = stats.reply_bytes
    result.counters = {
        "dispatcher.syn_reassigns_refused": service.syn_reassigns_refused,
        "dispatcher.flows_rejected": service.flows_rejected,
        "dispatcher.segments_dropped": service.segments_dropped,
        "dispatcher.flows": len(service.flows),
        "workload.requests": stats.requests_completed,
        "workload.sessions_completed": stats.sessions_completed,
        "workload.sessions_failed": stats.sessions_failed,
    }

    _attach_incident(result, fleet.tracer)
    return result


def _attach_incident(result: AttackResult, tracer) -> None:
    """Keep the trace stream; render an incident report on failure."""
    if not getattr(tracer, "records", None):
        return
    from repro.obs.flight import FlightRecorder

    result.tracer = tracer
    if not result.ok:
        result.incident = FlightRecorder(tracer).incident_report(
            title=str(result.spec),
            violations=[str(v) for v in result.violations],
        )


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------


def run_attack_cell(spec: AttackSpec, until: float = 30.0) -> AttackResult:
    """Run one attack cell end-to-end and check every invariant."""
    if spec.strategy != "none" and spec.strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {spec.strategy!r}")
    if spec.position not in POSITIONS:
        raise ValueError(f"unknown position {spec.position!r}")
    if spec.fraction not in ATTACK_FRACTIONS:
        raise ValueError(f"unknown fraction {spec.fraction!r}")
    if spec.strategy == "flow-poison":
        return _dispatcher_cell(spec, until=until)
    return _bridge_cell(spec, until=until)


def run_attack_matrix(
    specs: List[AttackSpec], until: float = 30.0
) -> List[AttackResult]:
    """Run many cells; returns every result (callers assert on failures)."""
    return [run_attack_cell(spec, until=until) for spec in specs]


def summarize(results: List[AttackResult]) -> str:
    failed = [r for r in results if not r.ok]
    lines = [f"{len(results) - len(failed)}/{len(results)} cells passed"]
    lines += [r.describe() for r in failed]
    return "\n".join(lines)
