"""Off-path attacker primitives.

An :class:`AttackerHost` wraps an ordinary :class:`repro.net.host.Host`
attached to the victim segment and exposes spoofed-injection
primitives: forged TCP segments (RST/SYN/FIN/ACK with arbitrary
addresses), forged ICMP fragmentation-needed packets, and gratuitous
ARP claims.  The underlying IP layer performs no source-address
validation — exactly the real-world property these attacks rely on.

Every injection is traced as ``adversary.inject`` (with the spoofed
kind, the victim node and the forged sequence number) so the isolation
invariants can correlate attacker activity with victim-side teardown
records, and each attack burst opens a span root tagged with attacker
provenance so incident timelines show *who* was active when.

Determinism: the attacker draws randomness only from the rng stream it
is constructed with (a :class:`repro.sim.rng.RngRegistry` stream), so a
cell replays bit-for-bit from its seed.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.net.addresses import Ipv4Address
from repro.net.host import Host
from repro.net.packet import IPPROTO_ICMP, IPPROTO_TCP, IcmpFragNeeded, Ipv4Datagram
from repro.tcp.segment import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_RST,
    FLAG_SYN,
    TcpSegment,
)

__all__ = ["AttackerHost"]


class AttackerHost:
    """Spoofing-only, off-path attacker bound to one host."""

    def __init__(self, host: Host, rng: random.Random):
        self.host = host
        self.sim = host.sim
        self.rng = rng
        self.tracer = host.tracer
        self.injections = 0
        self.injections_by_kind: Dict[str, int] = {}
        self._attack_spans: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # burst bookkeeping (phases + span provenance)
    # ------------------------------------------------------------------

    def start_attack(self, strategy: str, **detail: object) -> None:
        self.tracer.emit(
            self.sim.now, "adversary.attack_started", self.host.name,
            strategy=strategy, **detail,
        )
        self._attack_spans[strategy] = self.host.spans.trace_root(
            "adversary.attack", self.sim.now, self.host.name,
            strategy=strategy, attacker=self.host.name,
        )

    def finish_attack(self, strategy: str) -> None:
        self.tracer.emit(
            self.sim.now, "adversary.attack_finished", self.host.name,
            strategy=strategy, injections=self.injections,
        )
        ctx = self._attack_spans.pop(strategy, None)
        if ctx is not None:
            self.host.spans.finish(ctx, self.sim.now)

    # ------------------------------------------------------------------
    # injection primitives
    # ------------------------------------------------------------------

    def _record(self, kind: str, victim: str, **detail: object) -> None:
        self.injections += 1
        self.injections_by_kind[kind] = self.injections_by_kind.get(kind, 0) + 1
        self.tracer.emit(
            self.sim.now, "adversary.inject", self.host.name,
            kind=kind, victim=victim, **detail,
        )

    def spoof_tcp(
        self,
        src_ip: Ipv4Address,
        dst_ip: Ipv4Address,
        segment: TcpSegment,
        victim: str,
        kind: str,
    ) -> None:
        """Seal and inject a forged segment with an arbitrary source."""
        self._record(kind, victim, seq=segment.seq, ack=segment.ack,
                     dst=str(dst_ip))
        self.host.send_raw_datagram(Ipv4Datagram(
            src=src_ip,
            dst=dst_ip,
            protocol=IPPROTO_TCP,
            payload=segment.sealed(src_ip, dst_ip),
        ))

    def spoof_rst(
        self,
        src_ip: Ipv4Address,
        src_port: int,
        dst_ip: Ipv4Address,
        dst_port: int,
        seq: int,
        victim: str,
        ack: Optional[int] = None,
    ) -> None:
        flags = FLAG_RST | (FLAG_ACK if ack is not None else 0)
        self.spoof_tcp(src_ip, dst_ip, TcpSegment(
            src_port=src_port, dst_port=dst_port, seq=seq,
            ack=ack or 0, flags=flags, window=0,
        ), victim, "rst")

    def spoof_syn(
        self,
        src_ip: Ipv4Address,
        src_port: int,
        dst_ip: Ipv4Address,
        dst_port: int,
        seq: int,
        victim: str,
    ) -> None:
        self.spoof_tcp(src_ip, dst_ip, TcpSegment(
            src_port=src_port, dst_port=dst_port, seq=seq,
            ack=0, flags=FLAG_SYN, window=65535,
        ), victim, "syn")

    def spoof_fin_ack(
        self,
        src_ip: Ipv4Address,
        src_port: int,
        dst_ip: Ipv4Address,
        dst_port: int,
        seq: int,
        ack: int,
        victim: str,
    ) -> None:
        self.spoof_tcp(src_ip, dst_ip, TcpSegment(
            src_port=src_port, dst_port=dst_port, seq=seq,
            ack=ack, flags=FLAG_FIN | FLAG_ACK, window=65535,
        ), victim, "fin")

    def spoof_frag_needed(
        self,
        dst_ip: Ipv4Address,
        quoted_src: Ipv4Address,
        quoted_src_port: int,
        quoted_dst: Ipv4Address,
        quoted_dst_port: int,
        quoted_seq: int,
        mtu: int,
        victim: str,
    ) -> None:
        """Forge an ICMP frag-needed quoting a guessed outgoing segment."""
        self._record("icmp", victim, seq=quoted_seq, mtu=mtu)
        self.host.send_raw_datagram(Ipv4Datagram(
            src=self.host.ip.primary_address(),
            dst=dst_ip,
            protocol=IPPROTO_ICMP,
            payload=IcmpFragNeeded(
                mtu=mtu,
                quoted_src=quoted_src,
                quoted_dst=quoted_dst,
                quoted_src_port=quoted_src_port,
                quoted_dst_port=quoted_dst_port,
                quoted_seq=quoted_seq,
            ),
        ))

    def claim_ip(self, ip: Ipv4Address, victim: str) -> None:
        """Broadcast a gratuitous ARP claiming ``ip`` with our own MAC."""
        self._record("arp", victim, ip=str(ip))
        self.host.eth_interface.arp.announce(ip)
