"""Adversarial plane: seeded off-path attackers against the bridge.

The failover bridge is an IP-sharing, address-rewriting middlebox —
exactly the setting the off-path TCP attack literature exploits (PMTUD
isolation breaks, blind in-window resets, sequence inference through
side channels, NAT flow poisoning, ARP races).  This package models a
spoofing-capable but *off-path* attacker: it knows the victim's
4-tuple and can put arbitrary frames on the shared segment, but never
observes in-flight traffic and never learns sequence numbers except
through the side channels explicitly modeled.

* :mod:`repro.adversary.attacker` — the injection primitives
  (:class:`AttackerHost`), every action traced with attacker
  provenance and every random draw from a seeded registry stream;
* :mod:`repro.adversary.strategies` — scripted and adaptive attack
  generators (RST/SYN/FIN sweeps, PMTUD probes, sequence-window
  binary search, ARP races, dispatcher flow poisoning);
* :mod:`repro.adversary.matrix` — the attack matrix (strategy ×
  position × lifetime fraction), every cell invariant-checked and
  bit-for-bit replayable from its seed.
"""

from repro.adversary.attacker import AttackerHost
from repro.adversary.matrix import (
    ATTACK_FRACTIONS,
    AttackResult,
    AttackSpec,
    attack_matrix,
    run_attack_cell,
    run_attack_matrix,
    summarize,
)
from repro.adversary.strategies import STRATEGIES, AttackContext

__all__ = [
    "ATTACK_FRACTIONS",
    "STRATEGIES",
    "AttackContext",
    "AttackerHost",
    "AttackResult",
    "AttackSpec",
    "attack_matrix",
    "run_attack_cell",
    "run_attack_matrix",
    "summarize",
]
