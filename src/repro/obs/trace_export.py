"""Span export: Chrome trace-event JSON and a compact binary ring.

Two consumers, two formats:

* **Perfetto / chrome://tracing** — the trace-event JSON format
  (``ph: "X"`` complete events on per-host tracks, ``ph: "i"`` instants,
  ``ph: "M"`` metadata naming processes and threads).  Hosts map to
  processes; each trace gets its own thread row within the host so
  concurrent flows render as parallel tracks.
* **Million-flow runs** — a fixed-record binary ring
  (:func:`write_span_ring` / :func:`read_span_ring`): string-table +
  struct-packed records, ~56 bytes per span vs. ~300 for JSON, suitable
  for bounded in-memory rings dumped post-run.

Both writers are byte-deterministic: ordering is derived purely from
span ``(start, trace_id, span_id)``, JSON is emitted with sorted keys
and no whitespace, so a seeded run exports identically every time — the
CI obs-smoke job ``cmp``'s two runs to hold that line.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.spans import Span

__all__ = [
    "chrome_trace",
    "read_span_ring",
    "validate_trace_doc",
    "write_chrome_trace",
    "write_span_ring",
]


def _ordered(spans: Iterable[Span]) -> List[Span]:
    return sorted(spans, key=lambda s: (s.start, s.trace_id, s.span_id))


def _json_safe(value: object) -> object:
    """Trace-event args must be JSON values; stringify anything exotic."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def chrome_trace(spans: Iterable[Span]) -> Dict[str, object]:
    """Render spans as a Chrome trace-event document (Perfetto-loadable).

    Process ids are assigned over the sorted host names; thread ids are
    assigned per (host, trace) in order of first appearance over the
    deterministically-ordered span list.  Timestamps are microseconds
    (the format's unit), rounded to nanosecond precision so float noise
    cannot leak into the bytes.
    """
    ordered = _ordered(spans)
    hosts = sorted({span.host for span in ordered})
    pid_of = {host: index + 1 for index, host in enumerate(hosts)}
    tid_of: Dict[Tuple[str, int], int] = {}
    next_tid: Dict[str, int] = {host: 1 for host in hosts}

    events: List[Dict[str, object]] = []
    for host in hosts:
        events.append({
            "ph": "M", "name": "process_name", "pid": pid_of[host], "tid": 0,
            "args": {"name": host},
        })
    for span in ordered:
        track = (span.host, span.trace_id)
        tid = tid_of.get(track)
        if tid is None:
            tid = next_tid[span.host]
            next_tid[span.host] = tid + 1
            tid_of[track] = tid
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid_of[span.host],
                "tid": tid, "args": {"name": f"trace {span.trace_id:016x}"},
            })
        args: Dict[str, object] = {
            key: _json_safe(value) for key, value in sorted(span.attrs.items())
        }
        args["trace_id"] = f"{span.trace_id:016x}"
        args["span_id"] = f"{span.span_id:016x}"
        if span.parent_id:
            args["parent_id"] = f"{span.parent_id:016x}"
        event: Dict[str, object] = {
            "name": span.name,
            "cat": span.layer,
            "pid": pid_of[span.host],
            "tid": tid,
            "ts": round(span.start * 1e6, 3),
            "args": args,
        }
        if span.is_instant:
            event["ph"] = "i"
            event["s"] = "t"  # thread-scoped instant
        else:
            event["ph"] = "X"
            event["dur"] = round(span.duration * 1e6, 3)
        events.append(event)

    return {
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs.trace_export"},
        "traceEvents": events,
    }


def write_chrome_trace(path: str, spans: Iterable[Span]) -> Dict[str, object]:
    """Write the trace-event JSON canonically (sorted keys, no spaces).

    Returns the document so callers can validate or summarise it.
    """
    doc = chrome_trace(spans)
    with open(path, "w") as fh:
        json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
        fh.write("\n")
    return doc


_PHASES = frozenset({"X", "i", "M"})


def validate_trace_doc(doc: object) -> List[str]:
    """Schema check for the trace-event documents this module emits.

    Returns a list of problems (empty = valid).  Deliberately strict
    about what *we* produce, not about the format at large: every event
    needs ph/name/pid/tid, "X" needs numeric ts+dur >= 0, "i" needs ts
    and a scope, "M" must be a process_name/thread_name record.
    """
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _PHASES:
            errors.append(f"{where}: bad ph {ph!r}")
            continue
        for field in ("name", "pid", "tid"):
            if field not in event:
                errors.append(f"{where}: missing {field}")
        if not isinstance(event.get("args", {}), dict):
            errors.append(f"{where}: args not an object")
        if ph == "M":
            if event.get("name") not in ("process_name", "thread_name"):
                errors.append(f"{where}: unknown metadata {event.get('name')!r}")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            errors.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = event.get("dur")
            if (not isinstance(dur, (int, float)) or isinstance(dur, bool)
                    or dur < 0):
                errors.append(f"{where}: bad dur {dur!r}")
        if ph == "i" and event.get("s") not in ("t", "p", "g"):
            errors.append(f"{where}: instant without scope")
    return errors


# ----------------------------------------------------------------------
# Binary ring format
# ----------------------------------------------------------------------
#
#   header:  magic "RSPN" | u16 version | u16 reserved
#            u32 string-count | u32 record-count
#   strings: u32 length + utf-8 bytes, repeated  (names, hosts, attr JSON)
#   records: <QQQ IIII dd>  trace_id span_id parent_id
#                           name_idx host_idx attrs_idx reserved
#                           start end
#
# Attrs are stored as canonical JSON strings in the shared table, so the
# many spans that share an attribute shape (or have none) cost 4 bytes.

_MAGIC = b"RSPN"
_VERSION = 1
_HEADER = struct.Struct("<4sHHII")
_RECORD = struct.Struct("<QQQIIIIdd")


def write_span_ring(path: str, spans: Iterable[Span]) -> int:
    """Write spans in the compact binary ring format; returns the count."""
    ordered = _ordered(spans)
    strings: List[str] = []
    index_of: Dict[str, int] = {}

    def intern(text: str) -> int:
        idx = index_of.get(text)
        if idx is None:
            idx = len(strings)
            index_of[text] = idx
            strings.append(text)
        return idx

    records = []
    for span in ordered:
        attrs_json = json.dumps(
            {key: _json_safe(value) for key, value in span.attrs.items()},
            sort_keys=True, separators=(",", ":"),
        )
        records.append(_RECORD.pack(
            span.trace_id, span.span_id, span.parent_id,
            intern(span.name), intern(span.host), intern(attrs_json), 0,
            span.start, span.end,
        ))

    with open(path, "wb") as fh:
        fh.write(_HEADER.pack(_MAGIC, _VERSION, 0, len(strings), len(records)))
        for text in strings:
            raw = text.encode("utf-8")
            fh.write(struct.pack("<I", len(raw)))
            fh.write(raw)
        for record in records:
            fh.write(record)
    return len(records)


def read_span_ring(path: str) -> List[Span]:
    """Parse a ring file back into :class:`Span` objects (export inverse)."""
    with open(path, "rb") as fh:
        data = fh.read()
    if len(data) < _HEADER.size:
        raise ValueError(f"{path}: truncated header")
    magic, version, _, string_count, record_count = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise ValueError(f"{path}: bad magic {magic!r}")
    if version != _VERSION:
        raise ValueError(f"{path}: unsupported version {version}")
    offset = _HEADER.size
    strings: List[str] = []
    for _ in range(string_count):
        (length,) = struct.unpack_from("<I", data, offset)
        offset += 4
        strings.append(data[offset:offset + length].decode("utf-8"))
        offset += length
    spans: List[Span] = []
    for _ in range(record_count):
        (trace_id, span_id, parent_id, name_idx, host_idx, attrs_idx, _r,
         start, end) = _RECORD.unpack_from(data, offset)
        offset += _RECORD.size
        spans.append(Span(
            trace_id, span_id, parent_id, strings[name_idx],
            strings[host_idx], start, end, json.loads(strings[attrs_idx]),
        ))
    if offset != len(data):
        raise ValueError(f"{path}: {len(data) - offset} trailing bytes")
    return spans
