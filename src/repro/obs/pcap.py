"""Serialise traced frames into standard pcap files.

The simulator mostly passes header fields around as Python attributes,
but its checksum model is *bit-exact*: sums are kept in the mod-65535
domain, where adding a 32-bit field directly is identical to adding its
two 16-bit halves (2^16 ≡ 1 mod 65535).  That means the ``checksum``
carried by a sealed :class:`~repro.tcp.segment.TcpSegment` is a genuine
RFC 1071 Internet checksum for the byte layout produced here — the
files this module writes validate cleanly in Wireshark/tshark.

Layout notes:

* classic pcap, magic ``0xa1b2c3d4`` (microsecond timestamps),
  linktype 1 (Ethernet), no FCS;
* the MSS option is the standard kind 2/len 4; the paper's ORIG_DST
  option (§3.1) is emitted as the experimental kind 253 with len 8 —
  four address bytes followed by two zero pad bytes, matching the
  model's checksum contribution ``0xFD08 + addr``;
* heartbeats (simulation-private IP protocol 200) are 8 bytes:
  ``"HB"`` + 32-bit sequence + 2 pad bytes;
* capture points are ``eth.rx`` trace records, which the Ethernet
  segment emits exactly once per delivered frame and which carry the
  frame object in their detail.

Exports split frames into one capture per logical interface.  The
default ``role`` split distinguishes ``wire`` (client-visible LAN
traffic, including ARP and heartbeats) from ``divert`` (the P↔S
diverted path, identified by the ORIG_DST option); the ``segment``
split writes one capture per Ethernet segment — the multi-NIC view of
the cluster's dispatcher host.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.addresses import Ipv4Address, MacAddress
from repro.net.arp import ArpPacket
from repro.net.packet import (
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    EthernetFrame,
    HeartbeatPayload,
    IPPROTO_HEARTBEAT,
    IPPROTO_TCP,
    Ipv4Datagram,
)
from repro.sim.trace import TraceRecord, Tracer
from repro.tcp.segment import TcpSegment

PCAP_MAGIC = 0xA1B2C3D4
PCAP_VERSION = (2, 4)
LINKTYPE_ETHERNET = 1
SNAPLEN = 65535

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


# ----------------------------------------------------------------------
# serialisation
# ----------------------------------------------------------------------


def _mac_bytes(mac: MacAddress) -> bytes:
    return mac.value.to_bytes(6, "big")


def _ip_bytes(ip: Ipv4Address) -> bytes:
    return ip.value.to_bytes(4, "big")


def serialize_tcp(segment: TcpSegment) -> bytes:
    """TCP header + options + payload, carrying the model's checksum."""
    options = b""
    if segment.mss_option is not None:
        options += struct.pack(">BBH", 2, 4, segment.mss_option)
    if segment.orig_dst_option is not None:
        options += struct.pack(">BB", 253, 8) + _ip_bytes(segment.orig_dst_option) + b"\x00\x00"
    header = struct.pack(
        ">HHIIHHHH",
        segment.src_port,
        segment.dst_port,
        segment.seq,
        segment.ack,
        segment._offset_flags_word(),
        segment.window,
        segment.checksum,
        0,  # urgent pointer
    )
    return header + options + segment.payload


def _ipv4_header_checksum(header: bytes) -> int:
    total = sum(struct.unpack(f">{len(header) // 2}H", header))
    return (~(total % 0xFFFF)) & 0xFFFF


def serialize_ipv4(datagram: Ipv4Datagram) -> bytes:
    if isinstance(datagram.payload, TcpSegment):
        body = serialize_tcp(datagram.payload)
    elif isinstance(datagram.payload, HeartbeatPayload):
        body = b"HB" + struct.pack(">I", datagram.payload.sequence & 0xFFFFFFFF) + b"\x00\x00"
    else:
        body = b"\x00" * getattr(datagram.payload, "wire_size", 0)
    header = struct.pack(
        ">BBHHHBBH4s4s",
        0x45,  # version 4, IHL 5
        0,
        20 + len(body),
        0,  # identification
        0,  # flags/fragment offset
        datagram.ttl,
        datagram.protocol,
        0,  # checksum placeholder
        _ip_bytes(datagram.src),
        _ip_bytes(datagram.dst),
    )
    checksum = _ipv4_header_checksum(header)
    return header[:10] + struct.pack(">H", checksum) + header[12:] + body


def serialize_arp(packet: ArpPacket) -> bytes:
    target_mac = packet.target_mac
    tha = _mac_bytes(target_mac) if target_mac is not None else b"\x00" * 6
    return (
        struct.pack(">HHBBH", 1, ETHERTYPE_IPV4, 6, 4, packet.op)
        + _mac_bytes(packet.sender_mac)
        + _ip_bytes(packet.sender_ip)
        + tha
        + _ip_bytes(packet.target_ip)
    )


def serialize_frame(frame: EthernetFrame) -> bytes:
    if isinstance(frame.payload, Ipv4Datagram):
        body = serialize_ipv4(frame.payload)
    elif isinstance(frame.payload, ArpPacket):
        body = serialize_arp(frame.payload)
    else:
        body = b""
    return _mac_bytes(frame.dst) + _mac_bytes(frame.src) + struct.pack(">H", frame.ethertype) + body


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------


def write_pcap(path, packets: List[Tuple[float, EthernetFrame]]) -> int:
    """Write ``(time, frame)`` pairs to ``path``; returns the packet count."""
    with open(path, "wb") as fh:
        fh.write(
            _GLOBAL_HEADER.pack(
                PCAP_MAGIC, PCAP_VERSION[0], PCAP_VERSION[1], 0, 0, SNAPLEN, LINKTYPE_ETHERNET
            )
        )
        for when, frame in packets:
            data = serialize_frame(frame)
            ts_sec = int(when)
            ts_usec = int(round((when - ts_sec) * 1e6))
            if ts_usec >= 1_000_000:
                ts_sec += 1
                ts_usec -= 1_000_000
            fh.write(_RECORD_HEADER.pack(ts_sec, ts_usec, len(data), len(data)))
            fh.write(data)
    return len(packets)


def classify_interface(frame: EthernetFrame) -> str:
    """``divert`` for the P↔S diverted path (ORIG_DST present), else ``wire``."""
    payload = frame.payload
    if isinstance(payload, Ipv4Datagram) and isinstance(payload.payload, TcpSegment):
        if payload.payload.orig_dst_option is not None:
            return "divert"
    return "wire"


def captured_frames(tracer: Tracer) -> List[Tuple[float, EthernetFrame]]:
    """All frames recorded by the tracer (``eth.rx`` records with frames)."""
    return [(when, frame) for when, _segment, frame in captured_segments(tracer)]


def captured_segments(tracer: Tracer) -> List[Tuple[float, str, EthernetFrame]]:
    """``(time, segment, frame)`` triples for every recorded frame.

    The segment name is the ``eth.rx`` record's emitting node — each
    Ethernet segment emits exactly one such record per delivered frame,
    so on a multi-segment topology (the cluster's front LAN plus one
    backend LAN per shard, all meeting at the dispatcher host) this
    recovers which NIC saw the frame.
    """
    out = []
    for record in tracer.select("eth.rx"):
        frame = record.detail.get("frame")
        if isinstance(frame, EthernetFrame):
            out.append((record.time, record.node, frame))
    return out


def export_pcaps(tracer: Tracer, base_path, split: str = "role") -> Dict[str, int]:
    """Write one ``<base>.<interface>.pcap`` per logical interface.

    ``split`` picks what an "interface" means:

    * ``"role"`` (default) — the two-host failover testbed view:
      ``wire`` (client-visible LAN) vs ``divert`` (the P↔S path,
      identified by the ORIG_DST option);
    * ``"segment"`` — one capture per Ethernet segment, keyed by the
      segment's name.  This is the multi-NIC view of the cluster's
      dispatcher host, which straddles the front LAN and every backend
      LAN: each NIC's traffic lands in its own file, the way a real
      multi-homed capture (``tcpdump -i ethN``) would.

    Returns ``{interface: packet count}`` for the files written; an
    interface with no traffic produces no file.
    """
    if split not in ("role", "segment"):
        raise ValueError(f"split must be 'role' or 'segment', got {split!r}")
    by_interface: Dict[str, List[Tuple[float, EthernetFrame]]] = {}
    for when, segment, frame in captured_segments(tracer):
        interface = segment if split == "segment" else classify_interface(frame)
        by_interface.setdefault(interface, []).append((when, frame))
    counts = {}
    for interface, packets in sorted(by_interface.items()):
        counts[interface] = write_pcap(f"{base_path}.{interface}.pcap", packets)
    return counts


# ----------------------------------------------------------------------
# reading (round-trip verification, no external tooling needed)
# ----------------------------------------------------------------------


@dataclass
class CapturedPacket:
    """One parsed pcap record."""

    time: float
    src_mac: MacAddress
    dst_mac: MacAddress
    ethertype: int
    src_ip: Optional[Ipv4Address] = None
    dst_ip: Optional[Ipv4Address] = None
    protocol: Optional[int] = None
    ttl: Optional[int] = None
    segment: Optional[TcpSegment] = None
    heartbeat_sequence: Optional[int] = None
    arp_op: Optional[int] = None
    raw: bytes = field(default=b"", repr=False)


def _parse_tcp(data: bytes) -> TcpSegment:
    (src_port, dst_port, seq, ack, offset_flags, window, checksum, _urgent) = struct.unpack(
        ">HHIIHHHH", data[:20]
    )
    header_len = (offset_flags >> 12) * 4
    flags = offset_flags & 0x01FF
    options = data[20:header_len]
    payload = data[header_len:]
    mss = None
    orig_dst = None
    i = 0
    while i < len(options):
        kind = options[i]
        if kind == 0:  # end of options
            break
        if kind == 1:  # NOP
            i += 1
            continue
        length = options[i + 1]
        if kind == 2 and length == 4:
            mss = struct.unpack(">H", options[i + 2 : i + 4])[0]
        elif kind == 253 and length == 8:
            orig_dst = Ipv4Address(int.from_bytes(options[i + 2 : i + 6], "big"))
        i += length
    return TcpSegment(
        src_port=src_port,
        dst_port=dst_port,
        seq=seq,
        ack=ack,
        flags=flags,
        window=window,
        payload=payload,
        mss_option=mss,
        orig_dst_option=orig_dst,
        checksum=checksum,
    )


def internet_checksum_ok(src_ip: Ipv4Address, dst_ip: Ipv4Address, tcp_bytes: bytes) -> bool:
    """Validate the checksum of serialised TCP bytes the classical way:
    the one's-complement sum of pseudo-header + segment (checksum field
    included) must fold to zero."""
    pseudo = _ip_bytes(src_ip) + _ip_bytes(dst_ip) + struct.pack(">HH", IPPROTO_TCP, len(tcp_bytes))
    data = pseudo + tcp_bytes
    if len(data) % 2:
        data += b"\x00"
    total = sum(struct.unpack(f">{len(data) // 2}H", data))
    return total % 0xFFFF == 0


def read_pcap(path) -> List[CapturedPacket]:
    """Parse a pcap file written by :func:`write_pcap` (or any classic
    little-endian microsecond pcap carrying Ethernet frames)."""
    with open(path, "rb") as fh:
        blob = fh.read()
    magic, _vmaj, _vmin, _tz, _sig, _snap, linktype = _GLOBAL_HEADER.unpack_from(blob, 0)
    if magic != PCAP_MAGIC:
        raise ValueError(f"unsupported pcap magic 0x{magic:08x}")
    if linktype != LINKTYPE_ETHERNET:
        raise ValueError(f"unsupported linktype {linktype}")
    offset = _GLOBAL_HEADER.size
    packets = []
    while offset < len(blob):
        ts_sec, ts_usec, incl_len, _orig_len = _RECORD_HEADER.unpack_from(blob, offset)
        offset += _RECORD_HEADER.size
        data = blob[offset : offset + incl_len]
        offset += incl_len
        dst_mac = MacAddress(int.from_bytes(data[0:6], "big"))
        src_mac = MacAddress(int.from_bytes(data[6:12], "big"))
        ethertype = struct.unpack(">H", data[12:14])[0]
        packet = CapturedPacket(
            time=ts_sec + ts_usec / 1e6,
            src_mac=src_mac,
            dst_mac=dst_mac,
            ethertype=ethertype,
            raw=data,
        )
        body = data[14:]
        if ethertype == ETHERTYPE_IPV4 and len(body) >= 20:
            ihl = (body[0] & 0x0F) * 4
            total_len = struct.unpack(">H", body[2:4])[0]
            packet.ttl = body[8]
            packet.protocol = body[9]
            packet.src_ip = Ipv4Address(int.from_bytes(body[12:16], "big"))
            packet.dst_ip = Ipv4Address(int.from_bytes(body[16:20], "big"))
            inner = body[ihl:total_len]
            if packet.protocol == IPPROTO_TCP:
                packet.segment = _parse_tcp(inner)
            elif packet.protocol == IPPROTO_HEARTBEAT and len(inner) >= 6:
                packet.heartbeat_sequence = struct.unpack(">I", inner[2:6])[0]
        elif ethertype == ETHERTYPE_ARP and len(body) >= 28:
            packet.arp_op = struct.unpack(">H", body[6:8])[0]
            packet.src_ip = Ipv4Address(int.from_bytes(body[14:18], "big"))
            packet.dst_ip = Ipv4Address(int.from_bytes(body[24:28], "big"))
        packets.append(packet)
    return packets
