"""Observability plane: metrics registry, flight recorder, pcap export.

Three pillars, all passive with respect to the simulation:

* :mod:`repro.obs.metrics` — labelled counters/gauges/histograms with
  near-zero cost when disabled, threaded through the sim engine, the
  Ethernet segment, hosts, the TCP layer and the failover bridges.
* :mod:`repro.obs.flight` — a flight recorder that consumes ``Tracer``
  streams and reconstructs per-connection timelines and the failover
  phase breakdown (detection → takeover → recovery) the paper's
  Figures 3–6 are built from.
* :mod:`repro.obs.pcap` — serialises traced frames into standard pcap
  files (one per logical interface: the client-visible wire and the
  diverted P↔S path, or one per Ethernet segment/NIC) openable in
  Wireshark/tshark.
* :mod:`repro.obs.spans` — deterministic, sampling-aware causal span
  tracing stitched across layers by flow key, with
  :mod:`repro.obs.trace_export` emitting Perfetto-compatible JSON and a
  compact binary ring.

:mod:`repro.obs.bench` writes the machine-readable ``BENCH_*.json``
artifacts every benchmark run emits.

This package deliberately imports nothing from :mod:`repro.harness`:
the harness (chaos cells, CLI, benchmarks) layers on top of it.
"""

from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_registries,
)

# flight/pcap/bench import repro.net and repro.tcp, which themselves import
# repro.obs.metrics for instrumentation — so this __init__ must not load them
# eagerly.  PEP 562 lazy attributes keep ``from repro.obs import export_pcaps``
# working without the cycle.
_LAZY = {
    "FlightRecorder": "repro.obs.flight",
    "PhaseBreakdown": "repro.obs.flight",
    "ReintegrationBreakdown": "repro.obs.flight",
    "captured_segments": "repro.obs.pcap",
    "export_pcaps": "repro.obs.pcap",
    "read_pcap": "repro.obs.pcap",
    "write_pcap": "repro.obs.pcap",
    "validate_bench_doc": "repro.obs.bench",
    "write_bench_artifact": "repro.obs.bench",
    "NOT_SAMPLED": "repro.obs.spans",
    "NULL_SPANS": "repro.obs.spans",
    "Span": "repro.obs.spans",
    "SpanContext": "repro.obs.spans",
    "SpanTracer": "repro.obs.spans",
    "flow_key": "repro.obs.spans",
    "chrome_trace": "repro.obs.trace_export",
    "read_span_ring": "repro.obs.trace_export",
    "validate_trace_doc": "repro.obs.trace_export",
    "write_chrome_trace": "repro.obs.trace_export",
    "write_span_ring": "repro.obs.trace_export",
}


def __getattr__(name):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)


__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOT_SAMPLED",
    "NULL_METRICS",
    "NULL_SPANS",
    "merge_registries",
    "PhaseBreakdown",
    "ReintegrationBreakdown",
    "Span",
    "SpanContext",
    "SpanTracer",
    "captured_segments",
    "chrome_trace",
    "export_pcaps",
    "flow_key",
    "read_pcap",
    "read_span_ring",
    "validate_bench_doc",
    "validate_trace_doc",
    "write_bench_artifact",
    "write_chrome_trace",
    "write_pcap",
    "write_span_ring",
]
