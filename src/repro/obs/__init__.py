"""Observability plane: metrics registry, flight recorder, pcap export.

Three pillars, all passive with respect to the simulation:

* :mod:`repro.obs.metrics` — labelled counters/gauges/histograms with
  near-zero cost when disabled, threaded through the sim engine, the
  Ethernet segment, hosts, the TCP layer and the failover bridges.
* :mod:`repro.obs.flight` — a flight recorder that consumes ``Tracer``
  streams and reconstructs per-connection timelines and the failover
  phase breakdown (detection → takeover → recovery) the paper's
  Figures 3–6 are built from.
* :mod:`repro.obs.pcap` — serialises traced frames into standard pcap
  files (one per logical interface: the client-visible wire and the
  diverted P↔S path) openable in Wireshark/tshark.

:mod:`repro.obs.bench` writes the machine-readable ``BENCH_*.json``
artifacts every benchmark run emits.

This package deliberately imports nothing from :mod:`repro.harness`:
the harness (chaos cells, CLI, benchmarks) layers on top of it.
"""

from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_registries,
)

# flight/pcap/bench import repro.net and repro.tcp, which themselves import
# repro.obs.metrics for instrumentation — so this __init__ must not load them
# eagerly.  PEP 562 lazy attributes keep ``from repro.obs import export_pcaps``
# working without the cycle.
_LAZY = {
    "FlightRecorder": "repro.obs.flight",
    "PhaseBreakdown": "repro.obs.flight",
    "ReintegrationBreakdown": "repro.obs.flight",
    "export_pcaps": "repro.obs.pcap",
    "read_pcap": "repro.obs.pcap",
    "write_pcap": "repro.obs.pcap",
    "validate_bench_doc": "repro.obs.bench",
    "write_bench_artifact": "repro.obs.bench",
}


def __getattr__(name):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module 'repro.obs' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)


__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "merge_registries",
    "PhaseBreakdown",
    "ReintegrationBreakdown",
    "export_pcaps",
    "read_pcap",
    "validate_bench_doc",
    "write_bench_artifact",
    "write_pcap",
]
