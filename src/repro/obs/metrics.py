"""Labelled metrics: counters, gauges and histograms.

The registry is designed around two constraints:

* **Near-zero disabled cost.**  Every instrument holds a reference to
  its registry and checks a single ``enabled`` attribute before doing
  any work.  Hot paths (per-segment, per-event) additionally memoise
  the instrument object at construction time, so the steady-state cost
  of a disabled metric is one attribute load and one branch.
* **No simulation coupling.**  Instruments never read the clock or
  schedule events; they are pure accumulators that the flight recorder
  and CLI snapshot after (or during) a run.

Names are dotted (``bridge.segments_merged``); labels are free-form
keyword pairs (``host="pbridge"``, ``queue="P"``).  ``(name, labels)``
identifies an instrument: asking the registry twice returns the same
object, so layers can share counters without plumbing references.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Tuple

LabelKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _label_key(name: str, labels: Dict[str, object]) -> LabelKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_key(key: LabelKey) -> str:
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing accumulator."""

    __slots__ = ("_registry", "key", "value")

    def __init__(self, registry: "MetricsRegistry", key: LabelKey):
        self._registry = registry
        self.key = key
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if self._registry.enabled:
            self.value += amount

    def __repr__(self) -> str:
        return f"Counter({_render_key(self.key)}={self.value})"


class Gauge:
    """A point-in-time value with set/add/high-watermark updates."""

    __slots__ = ("_registry", "key", "value", "high_watermark")

    def __init__(self, registry: "MetricsRegistry", key: LabelKey):
        self._registry = registry
        self.key = key
        self.value = 0.0
        self.high_watermark = 0.0

    def set(self, value: float) -> None:
        if self._registry.enabled:
            self.value = value
            if value > self.high_watermark:
                self.high_watermark = value

    def add(self, delta: float) -> None:
        if self._registry.enabled:
            self.value += delta
            if self.value > self.high_watermark:
                self.high_watermark = self.value

    def __repr__(self) -> str:
        return f"Gauge({_render_key(self.key)}={self.value})"


class Histogram:
    """A sample accumulator summarised as count/mean/p50/p90/p99/max.

    Samples are kept in full up to ``max_samples`` (default 100k); past
    that the list is decimated by keeping every other sample, which
    bounds memory while keeping the distribution representative for the
    long steady-state runs the chaos matrix produces.
    """

    __slots__ = ("_registry", "key", "samples", "count", "total", "max_samples")

    def __init__(
        self, registry: "MetricsRegistry", key: LabelKey, max_samples: int = 100_000
    ):
        self._registry = registry
        self.key = key
        self.samples: List[float] = []
        self.count = 0
        self.total = 0.0
        self.max_samples = max_samples

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        self.count += 1
        self.total += value
        self.samples.append(value)
        if len(self.samples) > self.max_samples:
            del self.samples[::2]

    def summary(self) -> Dict[str, float]:
        if not self.samples:
            return {"count": self.count, "mean": 0.0, "p50": 0.0,
                    "p90": 0.0, "p99": 0.0, "max": 0.0}
        ordered = sorted(self.samples)
        return {
            "count": self.count,
            "mean": self.total / self.count,
            "p50": percentile(ordered, 0.50),
            "p90": percentile(ordered, 0.90),
            "p99": percentile(ordered, 0.99),
            "max": ordered[-1],
        }

    def __repr__(self) -> str:
        return f"Histogram({_render_key(self.key)}, n={self.count})"


def percentile(ordered: List[float], fraction: float) -> float:
    """Linear-interpolation percentile over an already-sorted list."""
    if not ordered:
        raise ValueError("percentile of empty list")
    if len(ordered) == 1:
        return ordered[0]
    rank = fraction * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = min(low + 1, len(ordered) - 1)
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


def stddev(samples: List[float]) -> float:
    """Population standard deviation (0.0 for fewer than two samples)."""
    n = len(samples)
    if n < 2:
        return 0.0
    mean = sum(samples) / n
    return math.sqrt(sum((s - mean) ** 2 for s in samples) / n)


class MetricsRegistry:
    """Factory and store for labelled instruments.

    Construct with ``enabled=False`` (or use the shared
    :data:`NULL_METRICS`) to get a registry whose instruments are inert:
    they can be created, threaded through constructors and called on hot
    paths, and every update is a single branch that falls through.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._instruments: Dict[LabelKey, object] = {}

    def _get(self, cls, name: str, labels: Dict[str, object]):
        key = _label_key(name, labels)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(self, key)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {_render_key(key)} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}"
            )
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[object]:
        return iter(self._instruments.values())

    def snapshot(self) -> Dict[str, object]:
        """All instruments as plain values, keyed by rendered name."""
        out: Dict[str, object] = {}
        for key, instrument in sorted(self._instruments.items()):
            rendered = _render_key(key)
            if isinstance(instrument, Histogram):
                out[rendered] = instrument.summary()
            else:
                out[rendered] = instrument.value
        return out

    def render(self, include_zero: bool = False) -> str:
        """Human-readable one-line-per-instrument dump."""
        lines = []
        for name, value in self.snapshot().items():
            if isinstance(value, dict):
                if value["count"] == 0 and not include_zero:
                    continue
                body = " ".join(
                    f"{k}={value[k]:.6g}" for k in ("count", "mean", "p50", "p90", "p99", "max")
                )
                lines.append(f"{name}: {body}")
            else:
                if not value and not include_zero:
                    continue
                lines.append(f"{name}: {value:.6g}" if isinstance(value, float) else f"{name}: {value}")
        return "\n".join(lines)


def merge_registries(
    sources: Dict[str, "MetricsRegistry"], label: str = "shard"
) -> "MetricsRegistry":
    """Fleet rollup: fold per-source registries into one labelled registry.

    Each instrument from source ``s`` reappears in the result with an
    added ``label=s`` label (so per-shard series stay distinguishable),
    **plus** an aggregate instrument carrying ``label=all`` that sums
    counters, sums gauge values (high watermark = max of sources — the
    fleet never held more than the sum, and per-shard peaks are
    preserved in the labelled series), and pools histogram samples so
    fleet-level percentiles come from the union distribution.

    ``sources`` maps a source name (e.g. ``"shard3"``) to its registry.
    Insertion order of ``sources`` does not affect the result's
    :meth:`~MetricsRegistry.snapshot`, which sorts by rendered key.
    """
    merged = MetricsRegistry(enabled=True)

    def _labelled(key: LabelKey, value: str) -> Dict[str, object]:
        labels: Dict[str, object] = dict(key[1])
        labels[label] = value
        return labels

    for source_name, registry in sources.items():
        for key, instrument in registry._instruments.items():
            name = key[0]
            if isinstance(instrument, Counter):
                merged.counter(name, **_labelled(key, source_name)).inc(
                    instrument.value
                )
                merged.counter(name, **_labelled(key, "all")).inc(instrument.value)
            elif isinstance(instrument, Gauge):
                tagged = merged.gauge(name, **_labelled(key, source_name))
                tagged.value = instrument.value
                tagged.high_watermark = instrument.high_watermark
                total = merged.gauge(name, **_labelled(key, "all"))
                total.value += instrument.value
                if instrument.high_watermark > total.high_watermark:
                    total.high_watermark = instrument.high_watermark
            elif isinstance(instrument, Histogram):
                tagged = merged.histogram(name, **_labelled(key, source_name))
                pooled = merged.histogram(name, **_labelled(key, "all"))
                for hist in (tagged, pooled):
                    hist.samples.extend(instrument.samples)
                    hist.count += instrument.count
                    hist.total += instrument.total
    return merged


#: Shared disabled registry — the default wired through constructors so
#: instrumented code never needs a None check.
NULL_METRICS = MetricsRegistry(enabled=False)
