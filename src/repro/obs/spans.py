"""Deterministic, sampling-aware causal span tracing.

The flight recorder (PR 2) tiles the phases of *one* failover between
*one* replica pair.  The cluster plane needs more: for any of 100k+
flows, which shard, which hop, which bridge phase burned the time?  This
module is the attribution substrate — a causal tree of **spans** stitched
across every layer a flow crosses (workload session → TCP tx/rx →
Ethernet hop → dispatcher NAT steering → bridge divert and
queue-matching → takeover/reintegration), exportable to Perfetto via
:mod:`repro.obs.trace_export`.

Design constraints, in priority order:

* **Passive.**  Like :mod:`repro.obs.metrics`, a span tracer never reads
  the simulation clock and never schedules events; every recording call
  takes ``now`` as an argument.  The ``obs-passive`` lint rule enforces
  this for the whole package.
* **Near-zero disabled cost.**  The :data:`NULL_SPANS` singleton (and
  any tracer built with ``sample_rate=0``) is inert: call sites guard on
  one ``enabled`` attribute, exactly the :data:`~repro.obs.metrics.NULL_METRICS`
  idiom, so a fleet built without tracing pays one branch per hook.
* **Deterministic sampling.**  Head-based: one draw from a named
  :mod:`repro.sim.rng` stream per trace *root* decides the whole tree.
  Ids are drawn from the same stream only for sampled traces, so two
  runs from the same seed produce bit-identical traces at any rate, and
  rate 0 consumes no randomness at all (the capacity artifact is
  byte-identical with tracing off vs. sample-rate 0).

Context propagates two ways:

* **Explicitly** — a :class:`SpanContext` returned by
  :meth:`SpanTracer.trace_root` / :meth:`SpanTracer.start_span` is held
  by the code that owns the span (the workload session generator, the
  takeover procedure).
* **By flow key** — layers that only see a segment in flight (TCP layer,
  Ethernet segment, dispatcher, bridge) look the context up by the
  direction-insensitive :func:`flow_key` of the 4-tuple.  NAT rewrites
  change the key mid-path, so the rewriting layer *aliases* the new key
  to the same context: the dispatcher aliases the shard-side key when it
  pins a flow, and the primary bridge aliases the divert-path key when
  it creates bridge state.  One trace therefore stitches
  client → dispatcher → shard-primary → secondary.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, merge_registries

__all__ = [
    "NOT_SAMPLED",
    "NULL_SPANS",
    "Span",
    "SpanContext",
    "SpanTracer",
    "flow_key",
]

#: Direction-insensitive flow identity: both endpoint tuples, sorted, so
#: a segment and its reply map to the same key.
FlowKey = Tuple[Tuple[int, int], Tuple[int, int]]


def flow_key(ip_a: object, port_a: int, ip_b: object, port_b: int) -> FlowKey:
    """Canonical key for the 4-tuple (order-insensitive endpoints).

    Addresses are anything with an integer ``value`` attribute
    (:class:`~repro.net.addresses.Ipv4Address`); plain ints also work,
    which keeps this module import-free of the net layer.
    """
    value_a = getattr(ip_a, "value", ip_a)
    value_b = getattr(ip_b, "value", ip_b)
    a = (value_a, port_a)
    b = (value_b, port_b)
    return (a, b) if a <= b else (b, a)


class SpanContext:
    """Propagated identity of one span: ``(trace id, span id, sampled)``.

    Unsampled traces share the single :data:`NOT_SAMPLED` sentinel so the
    not-sampled path allocates nothing.
    """

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(self, trace_id: int, span_id: int, sampled: bool) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.sampled = sampled

    def __repr__(self) -> str:
        if not self.sampled:
            return "SpanContext(not-sampled)"
        return f"SpanContext({self.trace_id:016x}/{self.span_id:016x})"


#: Shared context for every unsampled trace.
NOT_SAMPLED = SpanContext(0, 0, False)


class Span:
    """One recorded interval (or instant, when ``end == start``)."""

    __slots__ = (
        "trace_id", "span_id", "parent_id", "name", "layer",
        "host", "start", "end", "attrs",
    )

    def __init__(
        self,
        trace_id: int,
        span_id: int,
        parent_id: int,
        name: str,
        host: str,
        start: float,
        end: float,
        attrs: Dict[str, object],
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id  # 0 = trace root
        self.name = name
        # The layer is the dotted prefix ("tcp.tx" -> "tcp"): the unit the
        # per-layer cost rollup aggregates over.
        self.layer = name.split(".", 1)[0]
        self.host = host
        self.start = start
        self.end = end
        self.attrs = attrs

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def is_instant(self) -> bool:
        return self.end == self.start

    def __repr__(self) -> str:
        return (
            f"Span({self.name}@{self.host},"
            f" t={self.start:.6f}+{self.duration * 1e6:.1f}us)"
        )


class SpanTracer:
    """Collects spans for sampled traces; inert at ``sample_rate=0``.

    ``rng`` must be a named stream from :class:`repro.sim.rng.RngRegistry`
    (e.g. ``registry.stream("obs.spans")``) so the sampling decisions and
    ids replay bit-for-bit from the master seed.  ``max_spans`` bounds
    memory ring-style for million-flow runs: once full, the oldest
    finished spans fall off the front.
    """

    def __init__(
        self,
        rng: Optional[random.Random] = None,
        sample_rate: float = 1.0,
        max_spans: Optional[int] = None,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        if sample_rate > 0.0 and rng is None:
            raise ValueError("a sampling tracer needs a seeded rng stream")
        self.rng = rng
        self.sample_rate = sample_rate
        #: The one attribute hot paths check (NULL_METRICS idiom).
        self.enabled = sample_rate > 0.0
        self.max_spans = max_spans
        self.spans: Deque[Span] = deque(maxlen=max_spans)
        self.traces_started = 0
        self.traces_sampled = 0
        self.spans_dropped_open = 0
        self._open: Dict[int, Span] = {}
        self._flows: Dict[FlowKey, SpanContext] = {}
        # trace id -> flow keys bound to it, so finishing the root
        # releases every alias in O(keys) instead of a table sweep.
        self._trace_keys: Dict[int, List[FlowKey]] = {}

    # ------------------------------------------------------------------
    # span lifecycle
    # ------------------------------------------------------------------

    def trace_root(
        self, name: str, now: float, host: str, **attrs: object
    ) -> SpanContext:
        """Head-based sampling decision + root span for a new trace.

        Exactly one ``rng.random()`` draw per call; id draws happen only
        on the sampled path, so the stream's consumption — and therefore
        every downstream id — is a pure function of the seed and the
        (deterministic) call sequence.
        """
        if not self.enabled:
            return NOT_SAMPLED
        self.traces_started += 1
        assert self.rng is not None
        if self.rng.random() >= self.sample_rate:
            return NOT_SAMPLED
        self.traces_sampled += 1
        trace_id = self.rng.getrandbits(64) or 1
        span_id = self.rng.getrandbits(64) or 1
        ctx = SpanContext(trace_id, span_id, True)
        self._open[span_id] = Span(
            trace_id, span_id, 0, name, host, now, now, dict(attrs)
        )
        return ctx

    def start_span(
        self, parent: SpanContext, name: str, now: float, host: str, **attrs: object
    ) -> SpanContext:
        """Open a child span under ``parent`` (no-op if unsampled)."""
        if not parent.sampled:
            return NOT_SAMPLED
        assert self.rng is not None
        span_id = self.rng.getrandbits(64) or 1
        ctx = SpanContext(parent.trace_id, span_id, True)
        self._open[span_id] = Span(
            parent.trace_id, span_id, parent.span_id, name, host, now, now,
            dict(attrs),
        )
        return ctx

    def finish(self, ctx: SpanContext, now: float, **attrs: object) -> None:
        """Close an open span; closing a trace root releases its flow keys."""
        if not ctx.sampled:
            return
        span = self._open.pop(ctx.span_id, None)
        if span is None:
            return
        span.end = now
        if attrs:
            span.attrs.update(attrs)
        self.spans.append(span)
        if span.parent_id == 0:
            self._release_trace(ctx.trace_id)

    def event(
        self, parent: SpanContext, name: str, now: float, host: str, **attrs: object
    ) -> None:
        """Record an instant (zero-duration span) under ``parent``."""
        if not parent.sampled:
            return
        assert self.rng is not None
        span_id = self.rng.getrandbits(64) or 1
        self.spans.append(
            Span(parent.trace_id, span_id, parent.span_id, name, host, now, now,
                 dict(attrs))
        )

    def record_span(
        self,
        parent: SpanContext,
        name: str,
        start: float,
        end: float,
        host: str,
        **attrs: object,
    ) -> None:
        """Record a complete interval in one call (both ends known up
        front — e.g. an Ethernet hop, whose delivery time is computed at
        submission)."""
        if not parent.sampled:
            return
        assert self.rng is not None
        span_id = self.rng.getrandbits(64) or 1
        self.spans.append(
            Span(parent.trace_id, span_id, parent.span_id, name, host, start,
                 end, dict(attrs))
        )

    # ------------------------------------------------------------------
    # flow-key propagation (cross-layer, cross-NAT)
    # ------------------------------------------------------------------

    def bind_flow(self, key: FlowKey, ctx: SpanContext) -> None:
        """Make ``ctx`` discoverable by layers that only see the 4-tuple."""
        if not ctx.sampled:
            return
        self._flows[key] = ctx
        self._trace_keys.setdefault(ctx.trace_id, []).append(key)

    def alias_flow(self, new_key: FlowKey, old_key: FlowKey) -> None:
        """A NAT/divert rewrite changed the flow key: alias the new one.

        No-op when the old key is unbound (unsampled flow) — callers never
        need their own sampled-check beyond the ``enabled`` guard.
        """
        ctx = self._flows.get(old_key)
        if ctx is not None:
            self.bind_flow(new_key, ctx)

    def flow_ctx(self, key: FlowKey) -> Optional[SpanContext]:
        return self._flows.get(key)

    def flow_event(
        self, key: FlowKey, name: str, now: float, host: str, **attrs: object
    ) -> None:
        """Instant under the span bound to ``key`` (miss = unsampled = free)."""
        ctx = self._flows.get(key)
        if ctx is not None:
            self.event(ctx, name, now, host, **attrs)

    def flow_record_span(
        self,
        key: FlowKey,
        name: str,
        start: float,
        end: float,
        host: str,
        **attrs: object,
    ) -> None:
        ctx = self._flows.get(key)
        if ctx is not None:
            self.record_span(ctx, name, start, end, host, **attrs)

    def _release_trace(self, trace_id: int) -> None:
        for key in self._trace_keys.pop(trace_id, []):
            self._flows.pop(key, None)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    def finished_spans(self) -> List[Span]:
        """Finished spans in recording order (the export input)."""
        return list(self.spans)

    def abandon_open(self, now: float) -> int:
        """Close any still-open spans at ``now`` (end-of-run flush).

        Marks them ``truncated`` so the export distinguishes a span that
        genuinely ended from one the run cut off.  Returns the count.
        """
        dangling = sorted(self._open)
        for span_id in dangling:
            span = self._open.pop(span_id)
            span.end = max(span.end, now)
            span.attrs["truncated"] = True
            self.spans.append(span)
            self.spans_dropped_open += 1
        return len(dangling)

    def trace_tree(self) -> Dict[int, List[Span]]:
        """Finished spans grouped by trace id, each group start-ordered."""
        by_trace: Dict[int, List[Span]] = {}
        for span in self.spans:
            by_trace.setdefault(span.trace_id, []).append(span)
        for spans in by_trace.values():
            spans.sort(key=lambda s: (s.start, s.span_id))
        return by_trace

    def layer_rollup(self) -> MetricsRegistry:
        """Per-layer cost attribution as a metrics registry.

        One per-layer registry (span counter + duration histogram,
        labelled by host) folded through
        :func:`~repro.obs.metrics.merge_registries` — so span cost
        attribution aggregates exactly like the fleet's per-shard
        metrics: each series reappears with ``layer=<name>`` plus a
        ``layer=all`` aggregate whose percentiles pool every layer.
        """
        per_layer: Dict[str, MetricsRegistry] = {}
        for span in self.spans:
            registry = per_layer.get(span.layer)
            if registry is None:
                registry = per_layer[span.layer] = MetricsRegistry(enabled=True)
            registry.counter("span.count", host=span.host).inc()
            if not span.is_instant:
                registry.histogram(
                    "span.duration_s", host=span.host
                ).observe(span.duration)
        return merge_registries(per_layer, label="layer")

    def __repr__(self) -> str:
        return (
            f"SpanTracer(rate={self.sample_rate}, traces={self.traces_sampled}"
            f"/{self.traces_started}, spans={len(self.spans)})"
        )


def render_trace_tree(
    spans: Iterable[Span], max_traces: Optional[int] = None
) -> str:
    """Indented text rendering of span trees (the CLI timeline view)."""
    by_trace: Dict[int, List[Span]] = {}
    for span in spans:
        by_trace.setdefault(span.trace_id, []).append(span)
    lines: List[str] = []
    # Traces ordered by their earliest span, then id for stability.
    ordered = sorted(
        by_trace.items(), key=lambda item: (min(s.start for s in item[1]), item[0])
    )
    if max_traces is not None:
        ordered = ordered[:max_traces]
    for trace_id, trace_spans in ordered:
        children: Dict[int, List[Span]] = {}
        for span in trace_spans:
            children.setdefault(span.parent_id, []).append(span)
        for group in children.values():
            group.sort(key=lambda s: (s.start, s.span_id))
        lines.append(f"trace {trace_id:016x}")

        def _emit(parent_id: int, depth: int) -> None:
            for span in children.get(parent_id, []):
                attrs = " ".join(
                    f"{k}={v}" for k, v in sorted(span.attrs.items())
                )
                if span.is_instant:
                    timing = f"@{span.start * 1e3:.3f}ms"
                else:
                    timing = (
                        f"@{span.start * 1e3:.3f}ms"
                        f" +{span.duration * 1e6:.1f}us"
                    )
                body = f"{span.name} [{span.host}] {timing}"
                if attrs:
                    body += f" {attrs}"
                lines.append("  " * (depth + 1) + body)
                _emit(span.span_id, depth + 1)

        _emit(0, 0)
    return "\n".join(lines)


#: Shared inert tracer — the default wired through constructors so
#: instrumented layers never need a None check (NULL_METRICS idiom).
NULL_SPANS = SpanTracer(rng=None, sample_rate=0.0)
