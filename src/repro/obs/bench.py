"""Machine-readable benchmark artifacts (``BENCH_*.json``).

Every benchmark run (pytest benchmarks under ``benchmarks/`` and the
``python -m repro`` experiment runner) writes one JSON document per
experiment so perf trajectories can be compared across commits — the
baseline future optimisation PRs are judged against.

Schema ``repro.bench/v1``::

    {
      "schema": "repro.bench/v1",
      "name": "fig3_setup_times",            # artifact name
      "params": {...},                       # run configuration (JSON scalars)
      "results": [                           # one row per measured case
        {"label": "intra 64B", "metrics": {"median_us": 287.0, ...}},
        ...
      ],
      "stats": {"intra 64B": {"count": ..., "median": ..., "p99": ...,
                 "stddev": ...}, ...},       # optional full Stats dumps
      "phases": {"detection": 0.0153, ...}   # optional failover breakdown
    }

``validate_bench_doc`` is the schema check the test-suite runs against
freshly produced artifacts.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

SCHEMA_ID = "repro.bench/v1"

#: Environment variable that redirects artifact output (CI sets it).
BENCH_DIR_ENV = "REPRO_BENCH_DIR"


def bench_artifact_path(name: str, directory=None) -> str:
    base = directory or os.environ.get(BENCH_DIR_ENV) or "."
    return os.path.join(base, f"BENCH_{name}.json")


def write_bench_artifact(
    name: str,
    params: Dict[str, object],
    results: List[Dict[str, object]],
    stats: Optional[Dict[str, Dict[str, float]]] = None,
    phases: Optional[Dict[str, float]] = None,
    directory=None,
) -> str:
    """Validate and write one artifact; returns the file path."""
    doc: Dict[str, object] = {
        "schema": SCHEMA_ID,
        "name": name,
        "params": params,
        "results": results,
    }
    if stats is not None:
        doc["stats"] = stats
    if phases is not None:
        doc["phases"] = phases
    errors = validate_bench_doc(doc)
    if errors:
        raise ValueError(f"invalid bench artifact {name!r}: {errors}")
    path = bench_artifact_path(name, directory)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_bench_doc(doc) -> List[str]:
    """Return a list of schema violations (empty = valid)."""
    errors: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    if doc.get("schema") != SCHEMA_ID:
        errors.append(f"schema must be {SCHEMA_ID!r}, got {doc.get('schema')!r}")
    if not isinstance(doc.get("name"), str) or not doc.get("name"):
        errors.append("name must be a non-empty string")
    if not isinstance(doc.get("params"), dict):
        errors.append("params must be an object")
    results = doc.get("results")
    if not isinstance(results, list):
        errors.append("results must be a list")
    else:
        for i, row in enumerate(results):
            if not isinstance(row, dict):
                errors.append(f"results[{i}] is not an object")
                continue
            if not isinstance(row.get("label"), str) or not row.get("label"):
                errors.append(f"results[{i}].label must be a non-empty string")
            metrics = row.get("metrics")
            if not isinstance(metrics, dict) or not metrics:
                errors.append(f"results[{i}].metrics must be a non-empty object")
                continue
            for key, value in metrics.items():
                if not _is_number(value):
                    errors.append(f"results[{i}].metrics[{key!r}] is not a number")
    stats = doc.get("stats")
    if stats is not None:
        if not isinstance(stats, dict):
            errors.append("stats must be an object")
        else:
            for label, entry in stats.items():
                if not isinstance(entry, dict) or not all(
                    _is_number(v) for v in entry.values()
                ):
                    errors.append(f"stats[{label!r}] must map names to numbers")
    phases = doc.get("phases")
    if phases is not None:
        if not isinstance(phases, dict) or not all(
            _is_number(v) for v in phases.values()
        ):
            errors.append("phases must map phase names to numbers")
    extra = set(doc) - {"schema", "name", "params", "results", "stats", "phases"}
    if extra:
        errors.append(f"unknown top-level keys: {sorted(extra)}")
    return errors


def load_bench_artifact(path) -> Dict[str, object]:
    """Read an artifact back, raising on schema violations."""
    with open(path) as fh:
        doc = json.load(fh)
    errors = validate_bench_doc(doc)
    if errors:
        raise ValueError(f"invalid bench artifact at {path}: {errors}")
    return doc
