"""Flight recorder: reconstruct timelines from a ``Tracer`` stream.

The paper's headline numbers are *temporal* — Figures 3–6 break client
visible latency into detection, takeover and recovery — so the recorder
turns a flat trace into:

* **per-connection timelines**: creation, Δseq lock-in (merged SYN),
  first merged byte, FIN, deletion, plus merge counters;
* a **failover phase breakdown**: quiesce (last client-visible byte →
  crash), detection (crash → detector fire), takeover (detector fire →
  takeover complete / §6 direct-mode flush) and recovery (→ first
  post-failover client-visible byte).  The four phases are anchored on
  the same wire events the client-visible gap is measured from, so
  their sum *is* the gap — the identity the acceptance test checks;
* a human-readable **incident report** for failed chaos cells, placed
  next to the reproduction recipe.

Client-visible bytes are identified from ``eth.rx`` records that carry
the delivered frame: TCP payload destined to a bridge peer with no
ORIG_DST option (i.e. not on the diverted P↔S path).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.net.packet import Ipv4Datagram
from repro.sim.trace import TraceRecord, Tracer
from repro.tcp.segment import TcpSegment

# Phase annotations used in rendered reports.
_PHASE_NOTES = {
    "quiesce": "last client-visible byte before the crash",
    "detection": "crash until the fault detector fires",
    "takeover": "detector fire until takeover/direct-mode flush completes",
    "recovery": "until the first post-failover client-visible byte",
}

_REINTEGRATION_NOTES = {
    "quiesce": "bridge flipped to merge mode, snapshot taken (atomic)",
    "install": "state transfer until the joiner's TCBs and bridge are live",
    "rearm": "detectors re-created on both sides",
    "merge": "until every resumed connection emitted a matched byte",
}


@dataclass(frozen=True)
class Phase:
    name: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class PhaseBreakdown:
    """Failover decomposition; ``sum(durations) == client_gap`` holds by
    construction (the phases tile the gap interval exactly)."""

    crashed: str
    crash_time: float
    detect_time: float
    switch_time: float
    switch_kind: str  # "takeover" (primary crash) or "flush" (§6 direct mode)
    last_byte_before: Optional[float]
    first_byte_after: Optional[float]
    phases: List[Phase] = field(default_factory=list)

    @property
    def client_gap(self) -> Optional[float]:
        if self.last_byte_before is None or self.first_byte_after is None:
            return None
        return self.first_byte_after - self.last_byte_before

    @property
    def total(self) -> float:
        return sum(p.duration for p in self.phases)

    def durations(self) -> Dict[str, float]:
        return {p.name: p.duration for p in self.phases}

    def render(self) -> str:
        lines = [f"crash of {self.crashed} at t={self.crash_time:.6f}"]
        for p in self.phases:
            note = _PHASE_NOTES.get(p.name, "")
            lines.append(
                f"  {p.name:<10} {p.start:.6f} -> {p.end:.6f}  "
                f"{p.duration * 1e3:8.3f} ms  ({note})"
            )
        gap = self.client_gap
        if gap is not None:
            lines.append(
                f"  client-visible gap {gap * 1e3:.3f} ms"
                f" (phases sum to {self.total * 1e3:.3f} ms)"
            )
        else:
            lines.append("  client-visible gap unmeasured (no wire frames recorded)")
        return "\n".join(lines)


@dataclass
class ReintegrationBreakdown:
    """Reintegration decomposition; the four phases tile the interval from
    the quiesce event to merge completion exactly (see
    :mod:`repro.failover.reintegration` for the state machine)."""

    survivor: str
    joiner: str
    case: str  # "rejoin", "remerge" or "splice"
    start_time: float
    resumed: Optional[int] = None
    bypassed: Optional[int] = None
    complete_time: Optional[float] = None
    aborted: bool = False
    phases: List[Phase] = field(default_factory=list)

    @property
    def total(self) -> float:
        return sum(p.duration for p in self.phases)

    def durations(self) -> Dict[str, float]:
        return {p.name: p.duration for p in self.phases}

    def render(self) -> str:
        lines = [
            f"reintegration of {self.joiner} into {self.survivor}"
            f" ({self.case}) at t={self.start_time:.6f}"
            f" — resumed={self.resumed} bypassed={self.bypassed}"
        ]
        if self.aborted:
            lines.append("  ABORTED (a party died before install)")
            return "\n".join(lines)
        for p in self.phases:
            note = _REINTEGRATION_NOTES.get(p.name, "")
            lines.append(
                f"  {p.name:<10} {p.start:.6f} -> {p.end:.6f}  "
                f"{p.duration * 1e3:8.3f} ms  ({note})"
            )
        if self.complete_time is not None:
            lines.append(
                f"  redundancy restored after {self.total * 1e3:.3f} ms"
            )
        else:
            lines.append("  merge never completed (run ended first)")
        return "\n".join(lines)


@dataclass
class ConnectionTimeline:
    """One bridged connection reconstructed from ``bridge.p.*`` records."""

    peer: str
    role: str = "?"
    created: Optional[float] = None
    syn_merged: Optional[float] = None
    delta: Optional[int] = None
    mss: Optional[int] = None
    first_data: Optional[float] = None
    fin: Optional[float] = None
    deleted: Optional[float] = None
    delete_reason: Optional[str] = None
    data_segments: int = 0
    data_bytes: int = 0
    empty_acks: int = 0
    mismatches: int = 0
    events: List[Tuple[float, str]] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"{self.peer} (role={self.role})"]
        for when, label in self.events:
            lines.append(f"  t={when:.6f}  {label}")
        lines.append(
            f"  counters: data_segments={self.data_segments}"
            f" data_bytes={self.data_bytes} empty_acks={self.empty_acks}"
            f" mismatches={self.mismatches}"
        )
        return "\n".join(lines)


def _client_data_frame(record: TraceRecord) -> Optional[Tuple[str, int]]:
    """``(dst_ip, payload_len)`` if the record is a delivered frame
    carrying TCP payload outside the diverted path, else None."""
    frame = record.detail.get("frame")
    if frame is None:
        return None
    datagram = getattr(frame, "payload", None)
    if not isinstance(datagram, Ipv4Datagram):
        return None
    segment = datagram.payload
    if not isinstance(segment, TcpSegment) or not segment.payload:
        return None
    if segment.orig_dst_option is not None:
        return None
    return str(datagram.dst), len(segment.payload)


class FlightRecorder:
    """Consumes a tracer's recorded stream and answers timeline queries.

    The tracer must have been recording (``Tracer(record=True)``); the
    recorder is read-only and can be constructed repeatedly over a live
    tracer as a run progresses.
    """

    def __init__(self, tracer: Tracer, client_ips: Optional[Set[str]] = None):
        self.records: List[TraceRecord] = list(tracer.records)
        self._client_ips = client_ips

    # ------------------------------------------------------------------
    # per-connection timelines
    # ------------------------------------------------------------------

    def connections(self) -> List[ConnectionTimeline]:
        timelines: List[ConnectionTimeline] = []
        open_by_peer: Dict[str, ConnectionTimeline] = {}

        def active_for(record: TraceRecord) -> Optional[ConnectionTimeline]:
            # bridge.p events below are not peer-keyed; attribute them to
            # the most recently created still-open connection, which is
            # exact for the single-connection runs the harness drives and
            # a documented heuristic otherwise.
            if not open_by_peer:
                return None
            return max(open_by_peer.values(), key=lambda t: t.created or 0.0)

        for record in self.records:
            cat = record.category
            if not cat.startswith("bridge.p."):
                continue
            when = record.time
            detail = record.detail
            if cat == "bridge.p.conn_created":
                peer = str(detail.get("peer"))
                timeline = ConnectionTimeline(peer=peer, role=str(detail.get("role", "?")))
                timeline.created = when
                timeline.events.append((when, "created"))
                timelines.append(timeline)
                open_by_peer[peer] = timeline
                continue
            if cat == "bridge.p.conn_deleted":
                peer = str(detail.get("peer"))
                timeline = open_by_peer.pop(peer, None)
                if timeline is not None:
                    timeline.deleted = when
                    timeline.delete_reason = str(detail.get("reason"))
                    timeline.events.append((when, f"deleted ({timeline.delete_reason})"))
                continue
            timeline = active_for(record)
            if timeline is None:
                continue
            if cat == "bridge.p.syn_merged":
                timeline.syn_merged = when
                timeline.delta = detail.get("delta")
                timeline.mss = detail.get("mss")
                timeline.events.append(
                    (when, f"Δseq locked (delta={timeline.delta} mss={timeline.mss})")
                )
            elif cat == "bridge.p.emit_data":
                length = int(detail.get("len", 0))
                if length:
                    timeline.data_segments += 1
                    timeline.data_bytes += length
                    if timeline.first_data is None:
                        timeline.first_data = when
                        timeline.events.append(
                            (when, f"first merged byte (seq={detail.get('seq')})")
                        )
            elif cat == "bridge.p.empty_ack":
                timeline.empty_acks += 1
            elif cat == "bridge.p.emit_fin":
                if timeline.fin is None:
                    timeline.fin = when
                    timeline.events.append((when, f"FIN emitted (seq={detail.get('seq')})"))
            elif cat == "bridge.p.mismatch":
                timeline.mismatches += 1
                timeline.events.append((when, f"PAYLOAD MISMATCH: {detail.get('error')}"))
        return timelines

    # ------------------------------------------------------------------
    # client-visible wire bytes
    # ------------------------------------------------------------------

    def client_ips(self) -> Set[str]:
        """Bridge peers (the unmodified clients), inferred or supplied."""
        if self._client_ips is not None:
            return self._client_ips
        peers = set()
        for record in self.records:
            if record.category == "bridge.p.conn_created":
                peer = str(record.detail.get("peer", ""))
                if ":" in peer:
                    peers.add(peer.rsplit(":", 1)[0])
        return peers

    def client_byte_times(self) -> List[float]:
        """Times at which TCP payload reached a client on the wire."""
        clients = self.client_ips()
        times = []
        for record in self.records:
            if record.category != "eth.rx":
                continue
            hit = _client_data_frame(record)
            if hit is not None and (not clients or hit[0] in clients):
                times.append(record.time)
        return times

    # ------------------------------------------------------------------
    # failover phases
    # ------------------------------------------------------------------

    def _first(self, category: str, after: float = -1.0) -> Optional[TraceRecord]:
        for record in self.records:
            if record.category == category and record.time >= after:
                return record
        return None

    def phase_breakdown(self) -> Optional[PhaseBreakdown]:
        """Decompose the first crash in the trace, or None if no crash
        (or the run never produced a completed switch-over)."""
        breakdowns = self.phase_breakdowns()
        return breakdowns[0] if breakdowns else None

    def phase_breakdowns(self) -> List[PhaseBreakdown]:
        """Decompose *every* crash in the trace (repeated-failure runs:
        crash → reintegrate → crash again yields one breakdown each).

        Each crash's detection/switch events are searched only up to the
        next crash, so overlapping incidents never steal each other's
        markers; crashes whose switch-over never completed (e.g. the
        final crash of a to-the-death run) are skipped."""
        crashes = [r for r in self.records if r.category == "host.crash"]
        byte_times = self.client_byte_times()
        breakdowns: List[PhaseBreakdown] = []
        for index, crash in enumerate(crashes):
            bound = (
                crashes[index + 1].time
                if index + 1 < len(crashes)
                else float("inf")
            )
            detect = self._first("detector.failure", after=crash.time)
            if detect is None or detect.time > bound:
                continue
            switch = self._first("takeover.complete", after=detect.time)
            switch_kind = "takeover"
            if switch is None or switch.time > bound:
                switch = self._first("bridge.p.flushed", after=detect.time)
                switch_kind = "flush"
            if switch is None or switch.time > bound:
                continue

            last_before = None
            first_after = None
            for when in byte_times:
                if when <= crash.time:
                    last_before = when
                elif when >= switch.time and first_after is None:
                    first_after = when

            breakdown = PhaseBreakdown(
                crashed=crash.node,
                crash_time=crash.time,
                detect_time=detect.time,
                switch_time=switch.time,
                switch_kind=switch_kind,
                last_byte_before=last_before,
                first_byte_after=first_after,
            )
            quiesce_start = last_before if last_before is not None else crash.time
            recovery_end = first_after if first_after is not None else switch.time
            breakdown.phases = [
                Phase("quiesce", quiesce_start, crash.time),
                Phase("detection", crash.time, detect.time),
                Phase("takeover", detect.time, switch.time),
                Phase("recovery", switch.time, recovery_end),
            ]
            breakdowns.append(breakdown)
        return breakdowns

    # ------------------------------------------------------------------
    # attack phases
    # ------------------------------------------------------------------

    def attack_phases(self) -> List[Phase]:
        """Tile every adversary burst in the trace into a phase.

        ``adversary.attack_started`` / ``adversary.attack_finished``
        records are paired in order per attacker node; an unfinished
        attack (run ended mid-burst) closes at the last trace record.
        The phases render alongside detection/takeover so an incident
        shows *when* the attacker was active relative to the failover.
        """
        phases: List[Phase] = []
        open_attacks: Dict[Tuple[str, str], float] = {}
        last_time = self.records[-1].time if self.records else 0.0
        for record in self.records:
            if record.category == "adversary.attack_started":
                key = (record.node, str(record.detail.get("strategy")))
                open_attacks[key] = record.time
            elif record.category == "adversary.attack_finished":
                key = (record.node, str(record.detail.get("strategy")))
                start = open_attacks.pop(key, None)
                if start is not None:
                    phases.append(
                        Phase(f"attack:{key[1]}", start, record.time)
                    )
        for (node, strategy), start in sorted(open_attacks.items()):
            phases.append(Phase(f"attack:{strategy}", start, last_time))
        phases.sort(key=lambda p: p.start)
        return phases

    def attack_injections(self) -> int:
        """Total spoofed segments/packets the adversary put on the wire."""
        return sum(
            1 for r in self.records if r.category == "adversary.inject"
        )

    # ------------------------------------------------------------------
    # reintegration phases
    # ------------------------------------------------------------------

    def reintegration_breakdowns(self) -> List[ReintegrationBreakdown]:
        """Tile every reintegration in the trace into its four phases
        (quiesce → install → rearm → merge); the tiles cover the interval
        from the quiesce event to merge completion with no gaps."""
        breakdowns: List[ReintegrationBreakdown] = []
        current: Optional[ReintegrationBreakdown] = None
        marks: Dict[str, float] = {}
        for record in self.records:
            cat = record.category
            if not cat.startswith("reintegration."):
                continue
            when = record.time
            detail = record.detail
            if cat == "reintegration.start":
                current = ReintegrationBreakdown(
                    survivor=record.node,
                    joiner=str(detail.get("joiner")),
                    case=str(detail.get("case", "?")),
                    start_time=when,
                )
                marks = {"start": when}
                breakdowns.append(current)
            elif current is None:
                continue
            elif cat == "reintegration.snapshot":
                marks["snapshot"] = when
                current.resumed = detail.get("conns")
                current.bypassed = detail.get("bypassed")
            elif cat == "reintegration.aborted":
                current.aborted = True
                current = None
            elif cat == "reintegration.installed":
                marks["installed"] = when
            elif cat == "reintegration.armed":
                marks["armed"] = when
            elif cat == "reintegration.complete":
                current.complete_time = when
                snapshot = marks.get("snapshot", marks["start"])
                installed = marks.get("installed", snapshot)
                armed = marks.get("armed", installed)
                current.phases = [
                    Phase("quiesce", marks["start"], snapshot),
                    Phase("install", snapshot, installed),
                    Phase("rearm", installed, armed),
                    Phase("merge", armed, when),
                ]
                current = None
        return breakdowns

    # ------------------------------------------------------------------
    # reports
    # ------------------------------------------------------------------

    def report(self, title: str = "failover run") -> str:
        lines = [f"flight recorder report — {title}", ""]
        timelines = self.connections()
        if timelines:
            lines.append("connections:")
            for timeline in timelines:
                for line in timeline.render().splitlines():
                    lines.append(f"  {line}")
            lines.append("")
        breakdowns = self.phase_breakdowns()
        if breakdowns:
            lines.append("failover phases:")
            for breakdown in breakdowns:
                for line in breakdown.render().splitlines():
                    lines.append(f"  {line}")
        else:
            lines.append("failover phases: none observed (no crash in trace)")
        reintegrations = self.reintegration_breakdowns()
        if reintegrations:
            lines.append("reintegrations:")
            for breakdown in reintegrations:
                for line in breakdown.render().splitlines():
                    lines.append(f"  {line}")
        return "\n".join(lines)

    def incident_report(
        self,
        title: str,
        violations: Optional[List[str]] = None,
        tail: int = 12,
    ) -> str:
        """Diagnostic block for a failed chaos cell."""
        lines = [f"incident report — {title}"]
        if violations:
            lines.append("violations:")
            lines.extend(f"  {v}" for v in violations)
        breakdowns = self.phase_breakdowns()
        if breakdowns:
            lines.append("failover phases:")
            for breakdown in breakdowns:
                lines.extend(f"  {l}" for l in breakdown.render().splitlines())
        attacks = self.attack_phases()
        if attacks:
            injections = self.attack_injections()
            lines.append(f"attack phases ({injections} spoofed injections):")
            for phase in attacks:
                lines.append(
                    f"  {phase.name:<22} {phase.start:.6f} -> {phase.end:.6f}"
                    f"  {phase.duration * 1e3:8.3f} ms"
                )
        for breakdown in self.reintegration_breakdowns():
            lines.append("reintegration:")
            lines.extend(f"  {l}" for l in breakdown.render().splitlines())
        for timeline in self.connections():
            lines.extend(f"  {l}" for l in timeline.render().splitlines())
        if self.records:
            lines.append(f"trace tail (last {min(tail, len(self.records))} records):")
            lines.extend(f"  {r}" for r in self.records[-tail:])
        else:
            lines.append("trace tail: (tracer was not recording)")
        return "\n".join(lines)
