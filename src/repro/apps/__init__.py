"""Applications that drive the stack.

All of them are written against the plain socket facade and are therefore
oblivious to replication — the transparency property of the paper.  They
are deterministic per connection, which is the paper's requirement for
active replication (§1).

* :mod:`repro.apps.echo` — request/response echo service;
* :mod:`repro.apps.bulk` — unidirectional byte streams (Fig. 3/5 workloads);
* :mod:`repro.apps.request_reply` — 4-byte request, N-byte reply (Fig. 4);
* :mod:`repro.apps.store` — the deterministic "on-line store" of §1;
* :mod:`repro.apps.ftp` — minimal FTP with active-mode data connections
  from port 20 (§7.2 and the Fig. 6 experiment).
"""
