"""Echo service: replies with a deterministic transform of each request.

The simplest deterministic service — used by the quickstart example and by
many integration tests.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.net.host import Host
from repro.tcp.socket_api import ListeningSocket, SimSocket


def echo_server(host: Host, port: int = 7, prefix: bytes = b"echo:",
                max_connections: Optional[int] = None) -> Generator:
    """Serve echo connections; each connection gets its own process."""
    listening = ListeningSocket.listen(host, port)
    served = 0
    while max_connections is None or served < max_connections:
        sock = yield from listening.accept()
        host.spawn(_echo_connection(sock, prefix), f"echo-conn-{served}")
        served += 1
    listening.close()


def _echo_connection(sock: SimSocket, prefix: bytes) -> Generator:
    while True:
        data = yield from sock.recv(65536)
        if not data:
            break
        yield from sock.send_all(prefix + data)
    yield from sock.close_and_wait()


def echo_once(
    client: Host, server_ip, port: int, message: bytes, prefix: bytes = b"echo:"
) -> Generator:
    """Connect, send one message, read the full reply, close.

    Returns the reply bytes.
    """
    sock = SimSocket.connect(client, server_ip, port)
    yield from sock.wait_connected()
    yield from sock.send_all(message)
    reply = yield from sock.recv_exactly(len(prefix) + len(message))
    yield from sock.close_and_wait()
    return reply
