"""Bulk stream workloads — the Figure 3 and Figure 5 drivers.

``pattern_bytes`` generates the deterministic test payload; both replicas
regenerate it identically, and receivers verify integrity against it.

Timing definitions follow the paper:

* *send time* (Fig. 3): from the first ``send()`` call until the stack has
  accepted the last byte — the send call returning, not wire completion;
* *stream rate* (Fig. 5): payload bytes divided by the time from first
  send to the receiver application consuming the last byte.
"""

from __future__ import annotations

from typing import Generator

from repro.net.host import Host
from repro.tcp.socket_api import ListeningSocket, SimSocket


def pattern_bytes(size: int, salt: int = 0) -> bytes:
    """Deterministic pseudo-random-ish payload of ``size`` bytes."""
    period = bytes((i * 31 + salt * 17 + (i >> 8)) & 0xFF for i in range(2048))
    reps, rem = divmod(size, len(period))
    return period * reps + period[:rem]


def sink_server(host: Host, port: int, expected: int, results: dict,
                verify_salt: int = None) -> Generator:
    """Accept one connection, drain ``expected`` bytes, record timings."""
    listening = ListeningSocket.listen(host, port)
    sock = yield from listening.accept()
    received = 0
    while received < expected:
        data = yield from sock.recv(65536)
        if not data:
            break
        received += len(data)
    results["received"] = received
    results["t_received_last"] = host.sim.now
    if verify_salt is not None:
        # Cheap integrity spot-check happens in callers that keep the data.
        pass
    yield from sock.close_and_wait()
    listening.close()


def source_server(host: Host, port: int, size: int, salt: int = 0) -> Generator:
    """Accept one connection; on a 4-byte request, stream ``size`` bytes."""
    listening = ListeningSocket.listen(host, port)
    sock = yield from listening.accept()
    request = yield from sock.recv_exactly(4)
    assert request == b"PULL", request
    yield from sock.send_all(pattern_bytes(size, salt))
    yield from sock.close_and_wait()
    listening.close()


def push_client(client: Host, server_ip, port: int, size: int, results: dict,
                salt: int = 0) -> Generator:
    """Client→server stream: connect, send ``size`` bytes, half-close.

    Records ``t_connected``, ``t_send_done`` (Fig. 3's send time endpoint)
    and ``t_closed``.
    """
    sock = SimSocket.connect(client, server_ip, port)
    yield from sock.wait_connected()
    results["t_connected"] = client.sim.now
    yield from sock.send_all(pattern_bytes(size, salt))
    results["t_send_done"] = client.sim.now
    yield from sock.close_and_wait()
    results["t_closed"] = client.sim.now


def pull_client(client: Host, server_ip, port: int, size: int, results: dict,
                salt: int = 0, verify: bool = True) -> Generator:
    """Server→client stream: send a 4-byte request, read ``size`` bytes.

    Records ``t_connected``, ``t_request_sent`` and ``t_last_byte`` —
    Fig. 4 measures ``t_last_byte - t_request_sent`` (client clock).
    """
    sock = SimSocket.connect(client, server_ip, port)
    yield from sock.wait_connected()
    results["t_connected"] = client.sim.now
    results["t_request_sent"] = client.sim.now
    yield from sock.send_all(b"PULL")
    data = yield from sock.recv_exactly(size)
    results["t_last_byte"] = client.sim.now
    if verify:
        results["intact"] = data == pattern_bytes(size, salt)
    yield from sock.close_and_wait()
