"""Request/reply workload: 4-byte request, N-byte reply (Figure 4).

"The client application sends a 4-byte message to the server, and the
server sends a reply message back to the client.  [Figure 4] shows the
time that elapsed between the client starting to send the 4-byte message,
and the client receiving the last byte of the servers' reply."
"""

from __future__ import annotations

import struct
from typing import Generator

from repro.apps.bulk import pattern_bytes
from repro.net.host import Host
from repro.tcp.socket_api import ListeningSocket, SimSocket


def reply_server(
    host: Host, port: int, max_requests: int = None, backlog: int = 16
) -> Generator:
    """Serve requests forever: each 4-byte request encodes the reply size."""
    listening = ListeningSocket.listen(host, port, backlog=backlog)
    served = 0
    while max_requests is None or served < max_requests:
        sock = yield from listening.accept()
        host.spawn(_serve_one(sock), f"reply-conn-{served}")
        served += 1
    listening.close()


def _serve_one(sock: SimSocket) -> Generator:
    while True:
        try:
            request = yield from sock.recv_exactly(4)
        except ConnectionError:
            break
        if not request:
            break
        (size,) = struct.unpack(">I", request)
        if size == 0:
            break
        yield from sock.send_all(pattern_bytes(size, salt=size & 0xFF))
    yield from sock.close_and_wait()


def resume_reply_server(host: Host, sock: SimSocket, resume) -> Generator:
    """Warm-start a replica of :func:`_serve_one` on a reintegrating host.

    The request/reply protocol is quiescent at exchange boundaries: each
    request is 4 bytes (delivered in one segment) and each reply is
    produced by a single ``send_all`` call, so a reintegration snapshot's
    stream offsets always land between exchanges.  Reply bytes that were
    in flight at snapshot time travel inside the installed TCB and need
    no regeneration — the replica just re-enters the serve loop and
    regenerates everything from the snapshot position onward.
    """
    return _serve_one(sock)


def request_once(
    client: Host, server_ip, port: int, reply_size: int, results: dict
) -> Generator:
    """One full exchange on a fresh connection; records Fig. 4's interval."""
    sock = SimSocket.connect(client, server_ip, port)
    yield from sock.wait_connected()
    results["t_request"] = client.sim.now
    yield from sock.send_all(struct.pack(">I", reply_size))
    data = yield from sock.recv_exactly(reply_size)
    results["t_reply_done"] = client.sim.now
    results["intact"] = data == pattern_bytes(reply_size, salt=reply_size & 0xFF)
    yield from sock.send_all(struct.pack(">I", 0))
    yield from sock.close_and_wait()


def request_on_socket(sock: SimSocket, reply_size: int, results: dict) -> Generator:
    """One exchange on an existing connection (for repeated trials)."""
    results["t_request"] = sock.conn.sim.now
    yield from sock.send_all(struct.pack(">I", reply_size))
    data = yield from sock.recv_exactly(reply_size)
    results["t_reply_done"] = sock.conn.sim.now
    results["intact"] = data == pattern_bytes(reply_size, salt=reply_size & 0xFF)
