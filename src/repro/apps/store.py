"""The paper's motivating example: a deterministic on-line store (§1).

"An on-line store is an example of a deterministic service.  Unless two
customers compete for the last remaining item, each client will get a
well-defined response to a browse or purchase request — independent of the
fact that the server implementation uses an independent thread per
client."

A tiny line-oriented protocol::

    BROWSE <sku>         -> ITEM <sku> <price> <stock> | NOITEM <sku>
    BUY <sku> <qty>      -> SOLD <sku> <qty> <total> | OUT <sku>
    QUIT                 -> BYE

Both replicas start from the same catalogue and apply the same requests in
the same per-connection order, so their replies are byte-identical — the
determinism the bridge's payload matching relies on.  The test suite also
runs an intentionally *non*-deterministic variant to show the bridge
detecting divergence.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.net.host import Host
from repro.tcp.socket_api import ListeningSocket, SimSocket

DEFAULT_CATALOGUE: Tuple[Tuple[str, int, int], ...] = (
    ("anvil", 1999, 12),
    ("rocket-skates", 7999, 3),
    ("tnt-crate", 4999, 42),
    ("bird-seed", 399, 100),
)


class Store:
    """In-memory catalogue with deterministic operations."""

    def __init__(self, catalogue=DEFAULT_CATALOGUE):
        self.items: Dict[str, List[int]] = {
            sku: [price, stock] for sku, price, stock in catalogue
        }
        self.orders: List[Tuple[str, int]] = []

    def browse(self, sku: str) -> str:
        entry = self.items.get(sku)
        if entry is None:
            return f"NOITEM {sku}"
        price, stock = entry
        return f"ITEM {sku} {price} {stock}"

    def buy(self, sku: str, qty: int) -> str:
        entry = self.items.get(sku)
        if entry is None:
            return f"NOITEM {sku}"
        price, stock = entry
        if stock < qty:
            return f"OUT {sku}"
        entry[1] = stock - qty
        self.orders.append((sku, qty))
        return f"SOLD {sku} {qty} {price * qty}"

    def handle(self, line: str) -> Optional[str]:
        parts = line.strip().split()
        if not parts:
            return "ERR empty"
        verb = parts[0].upper()
        if verb == "BROWSE" and len(parts) == 2:
            return self.browse(parts[1])
        if verb == "BUY" and len(parts) == 3 and parts[2].isdigit():
            return self.buy(parts[1], int(parts[2]))
        if verb == "QUIT":
            return None
        return f"ERR bad-request {line.strip()}"


def store_server(host: Host, port: int = 8080, catalogue=DEFAULT_CATALOGUE,
                 max_connections: Optional[int] = None) -> Generator:
    """Serve the store protocol; one process per connection."""
    store = Store(catalogue)
    listening = ListeningSocket.listen(host, port)
    served = 0
    while max_connections is None or served < max_connections:
        sock = yield from listening.accept()
        host.spawn(_store_connection(sock, store), f"store-conn-{served}")
        served += 1
    listening.close()


def _store_connection(sock: SimSocket, store: Store) -> Generator:
    while True:
        line = yield from sock.recv_line()
        if not line:
            break
        reply = store.handle(line.decode("ascii", "replace"))
        if reply is None:
            yield from sock.send_all(b"BYE\r\n")
            break
        yield from sock.send_all(reply.encode("ascii") + b"\r\n")
    yield from sock.close_and_wait()


def shopping_session(
    client: Host, server_ip, port: int, script: List[str], results: dict
) -> Generator:
    """Run a scripted session; collects every reply line."""
    sock = SimSocket.connect(client, server_ip, port)
    yield from sock.wait_connected()
    replies: List[str] = []
    for command in script:
        yield from sock.send_all(command.encode("ascii") + b"\r\n")
        line = yield from sock.recv_line()
        replies.append(line.decode("ascii"))
        if command.upper() == "QUIT":
            break
    results["replies"] = replies
    yield from sock.close_and_wait()
    return replies
