"""FTP client: scripted sessions for the Fig. 6 experiment.

``get``/``put`` time the transfer the way an FTP client reports rates: from
issuing the RETR/STOR command to the data connection closing, and they
return (bytes, seconds) so the harness can compute KB/s.
"""

from __future__ import annotations

from typing import Generator, Optional, Tuple

from repro.apps.ftp.protocol import FTP_CONTROL_PORT, format_port_command
from repro.net.addresses import Ipv4Address
from repro.net.host import Host
from repro.tcp.socket_api import ListeningSocket, SimSocket


class FtpError(ConnectionError):
    """Unexpected reply on the control connection."""


class FtpClient:
    """Active-mode FTP client bound to one simulated host."""

    def __init__(self, host: Host, server_ip: Ipv4Address,
                 control_port: int = FTP_CONTROL_PORT):
        self.host = host
        self.server_ip = server_ip
        self.control_port = control_port
        self.control: Optional[SimSocket] = None

    # -- session management -------------------------------------------------

    def connect_and_login(self, user: str = "anonymous", password: str = "repro") -> Generator:
        self.control = SimSocket.connect(self.host, self.server_ip, self.control_port)
        yield from self.control.wait_connected()
        yield from self._expect("220")
        yield from self._command(f"USER {user}", "331")
        yield from self._command(f"PASS {password}", "230")

    def quit(self) -> Generator:
        if self.control is not None:
            yield from self._command("QUIT", "221")
            yield from self.control.close_and_wait()
            self.control = None

    # -- transfers ------------------------------------------------------------

    def get(self, name: str) -> Generator:
        """RETR ``name``; returns (data, transfer_seconds)."""
        listener, port = self._fresh_data_listener()
        yield from self._command(
            format_port_command(self._local_ip(), port), "200"
        )
        started = self.host.sim.now
        yield from self._command(f"RETR {name}", "150")
        data_sock = yield from listener.accept()
        data = yield from data_sock.recv_until_eof()
        yield from data_sock.close_and_wait()
        elapsed = self.host.sim.now - started
        listener.close()
        yield from self._expect("226")
        return data, elapsed

    def put(self, name: str, content: bytes) -> Generator:
        """STOR ``name``; returns transfer_seconds.

        As in the paper's client-reported put rates, timing ends when the
        client has pushed the last byte and closed its side — the 226 from
        the server is read afterwards.
        """
        listener, port = self._fresh_data_listener()
        yield from self._command(
            format_port_command(self._local_ip(), port), "200"
        )
        yield from self._command(f"STOR {name}", "150")
        data_sock = yield from listener.accept()
        # The paper's client-reported put rates time the data write loop
        # only (send() returns when the stack buffers the bytes) — a 0.2 KB
        # put at "512 KB/s" is below one WAN RTT, so neither the 150
        # round-trip nor the close handshake can be inside their interval.
        started = self.host.sim.now
        yield from data_sock.send_all(content)
        elapsed = max(self.host.sim.now - started, 1e-9)
        yield from data_sock.close_and_wait()
        listener.close()
        yield from self._expect("226")
        return elapsed

    def listing(self) -> Generator:
        listener, port = self._fresh_data_listener()
        yield from self._command(
            format_port_command(self._local_ip(), port), "200"
        )
        yield from self._command("LIST", "150")
        data_sock = yield from listener.accept()
        data = yield from data_sock.recv_until_eof()
        yield from data_sock.close_and_wait()
        listener.close()
        yield from self._expect("226")
        return data.decode("ascii")

    # -- internals --------------------------------------------------------------

    def _fresh_data_listener(self) -> Tuple[ListeningSocket, int]:
        port = self.host.tcp.allocate_ephemeral_port()
        return ListeningSocket.listen(self.host, port), port

    def _local_ip(self) -> Ipv4Address:
        return self.host.ip.primary_address()

    def _command(self, line: str, expect_code: str) -> Generator:
        yield from self.control.send_all(line.encode("ascii") + b"\r\n")
        reply = yield from self._expect(expect_code)
        return reply

    def _expect(self, code: str) -> Generator:
        line = yield from self.control.recv_line()
        text = line.decode("ascii")
        if not text.startswith(code):
            raise FtpError(f"expected {code}, got {text!r}")
        return text
