"""Minimal FTP (RFC 959 subset) with active-mode data connections.

This is the paper's "real-world application" (§9, Fig. 6): a control
connection on port 21 and, for every transfer, a *server-initiated* data
connection from port 20 to a client-chosen ephemeral port — which
exercises §7.2 (the replicated server acting as a TCP client).
"""

from repro.apps.ftp.client import FtpClient
from repro.apps.ftp.protocol import FTP_CONTROL_PORT, FTP_DATA_PORT, FileStore
from repro.apps.ftp.server import ftp_server

__all__ = ["FTP_CONTROL_PORT", "FTP_DATA_PORT", "FileStore", "FtpClient", "ftp_server"]
