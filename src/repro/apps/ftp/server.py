"""FTP server: control connection handler and active-mode data transfers.

The server always opens the data connection itself, from local port 20
(``FTP_DATA_PORT``) to the address/port the client supplied with PORT —
when run replicated this is precisely §7.2's server-initiated connection
establishment: both replicas issue the ``connect()``, the secondary's SYN
is diverted, and the primary bridge emits one merged SYN to the client.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.apps.ftp.protocol import (
    FTP_CONTROL_PORT,
    FTP_DATA_PORT,
    FileStore,
    parse_command,
    parse_port_argument,
)
from repro.net.host import Host
from repro.tcp.socket_api import ListeningSocket, SimSocket


def ftp_server(
    host: Host,
    store: FileStore,
    control_port: int = FTP_CONTROL_PORT,
    max_sessions: Optional[int] = None,
) -> Generator:
    """Accept control connections; one session process per client."""
    listening = ListeningSocket.listen(host, control_port)
    sessions = 0
    while max_sessions is None or sessions < max_sessions:
        control = yield from listening.accept()
        host.spawn(_session(host, control, store), f"ftp-session-{sessions}")
        sessions += 1
    listening.close()


def _session(host: Host, control: SimSocket, store: FileStore) -> Generator:
    yield from _reply(control, "220 repro FTP service ready")
    data_target = None
    logged_in = False
    while True:
        line = yield from control.recv_line()
        if not line:
            break
        verb, argument = parse_command(line)
        if verb == "USER":
            yield from _reply(control, "331 password required")
        elif verb == "PASS":
            logged_in = True
            yield from _reply(control, "230 logged in")
        elif verb == "PORT":
            try:
                data_target = parse_port_argument(argument)
            except ValueError:
                yield from _reply(control, "501 bad PORT")
                continue
            yield from _reply(control, "200 PORT accepted")
        elif verb == "RETR":
            if not _ready(logged_in, data_target):
                yield from _reply(control, "503 bad sequence")
                continue
            content = store.get(argument)
            if content is None:
                yield from _reply(control, f"550 {argument}: no such file")
                continue
            yield from _reply(control, f"150 opening data connection ({len(content)} bytes)")
            ok = yield from _send_file(host, data_target, content)
            data_target = None
            yield from _reply(control, "226 transfer complete" if ok else "426 transfer failed")
        elif verb == "STOR":
            if not _ready(logged_in, data_target):
                yield from _reply(control, "503 bad sequence")
                continue
            yield from _reply(control, "150 opening data connection")
            data = yield from _receive_file(host, data_target)
            data_target = None
            if data is None:
                yield from _reply(control, "426 transfer failed")
            else:
                store.put(argument, data)
                yield from _reply(control, f"226 transfer complete ({len(data)} bytes)")
        elif verb == "LIST":
            if not _ready(logged_in, data_target):
                yield from _reply(control, "503 bad sequence")
                continue
            yield from _reply(control, "150 here comes the directory listing")
            ok = yield from _send_file(host, data_target, store.listing().encode("ascii"))
            data_target = None
            yield from _reply(control, "226 transfer complete" if ok else "426 transfer failed")
        elif verb == "QUIT":
            yield from _reply(control, "221 goodbye")
            break
        else:
            yield from _reply(control, f"502 {verb} not implemented")
    yield from control.close_and_wait()


def _ready(logged_in: bool, data_target) -> bool:
    return logged_in and data_target is not None


def _reply(control: SimSocket, line: str) -> Generator:
    yield from control.send_all(line.encode("ascii") + b"\r\n")


def _open_data_connection(host: Host, data_target) -> Generator:
    ip, port = data_target
    sock = SimSocket.connect(host, ip, port, local_port=FTP_DATA_PORT)
    yield from sock.wait_connected()
    return sock


def _send_file(host: Host, data_target, content: bytes) -> Generator:
    try:
        sock = yield from _open_data_connection(host, data_target)
        yield from sock.send_all(content)
        yield from sock.close_and_wait()
        return True
    except ConnectionError:
        return False


def _receive_file(host: Host, data_target) -> Generator:
    try:
        sock = yield from _open_data_connection(host, data_target)
        data = yield from sock.recv_until_eof()
        yield from sock.close_and_wait()
        return data
    except ConnectionError:
        return None
