"""FTP wire-format helpers and the in-memory file store."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.net.addresses import Ipv4Address

FTP_CONTROL_PORT = 21
FTP_DATA_PORT = 20


class FileStore:
    """Deterministic in-memory filesystem shared (by construction) between
    the replicas: both are created from the same initial contents and see
    the same STOR payloads."""

    def __init__(self, files: Optional[Dict[str, bytes]] = None):
        self.files: Dict[str, bytes] = dict(files or {})

    def get(self, name: str) -> Optional[bytes]:
        return self.files.get(name)

    def put(self, name: str, data: bytes) -> None:
        self.files[name] = data

    def listing(self) -> str:
        lines = [f"{name} {len(data)}" for name, data in sorted(self.files.items())]
        return "\r\n".join(lines) + ("\r\n" if lines else "")


def format_port_command(ip: Ipv4Address, port: int) -> str:
    """Encode a PORT argument: h1,h2,h3,h4,p1,p2."""
    octets = ip.value.to_bytes(4, "big")
    return (
        f"PORT {octets[0]},{octets[1]},{octets[2]},{octets[3]},"
        f"{port >> 8},{port & 0xFF}"
    )


def parse_port_argument(argument: str) -> Tuple[Ipv4Address, int]:
    """Decode a PORT argument back into (ip, port)."""
    parts = [int(p) for p in argument.split(",")]
    if len(parts) != 6 or any(not 0 <= p <= 255 for p in parts):
        raise ValueError(f"malformed PORT argument {argument!r}")
    ip = Ipv4Address(int.from_bytes(bytes(parts[:4]), "big"))
    return ip, (parts[4] << 8) | parts[5]


def parse_command(line: bytes) -> Tuple[str, str]:
    """Split a control line into (VERB, argument)."""
    text = line.decode("ascii", "replace").strip()
    if " " in text:
        verb, argument = text.split(" ", 1)
    else:
        verb, argument = text, ""
    return verb.upper(), argument.strip()
