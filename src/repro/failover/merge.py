"""ACK and window merging (§3.2, §3.4).

Every segment the primary bridge sends to the client carries

* ``ACK = min(ack_P, ack_S)`` — "choosing the smaller of the two
  acknowledgments guarantees that both servers have successfully received
  all of the client's data up to the sequence number of the forwarded
  acknowledgment" (requirement 2 of §2 — the safety property a failover
  depends on), and
* ``window = min(win_P, win_S)`` — "adapts the client's send rate to the
  slower of the two servers and, thus, reduces the risk of message loss."

The bridge also synthesises an *empty* segment whenever the merged ACK
advances past the last ACK it sent but no payload match exists — this is
both the deadlock prevention of §3.4 and the delayed-ACK forwarding rule.
"""

from __future__ import annotations

from typing import Optional

from repro.tcp.seqnum import seq_gt, seq_min


class AckWindowMerge:
    """Latest ACK/window observed from each replica, plus what was sent.

    ``use_min_ack`` / ``use_min_window`` exist for the ablation benchmark:
    disabling them forwards the primary's own values, which violates
    requirement 2 of §2 and loses data on failover — the ablation
    demonstrates exactly that.
    """

    def __init__(self, use_min_ack: bool = True, use_min_window: bool = True) -> None:
        self.use_min_ack = use_min_ack
        self.use_min_window = use_min_window
        self.ack_p: Optional[int] = None
        self.ack_s: Optional[int] = None
        self.win_p: int = 0
        self.win_s: int = 0
        self.last_sent_ack: Optional[int] = None
        self.empty_acks_sent = 0

    def update_from_primary(self, ack: Optional[int], window: int) -> None:
        if ack is not None:
            self.ack_p = ack
        self.win_p = window

    def update_from_secondary(self, ack: Optional[int], window: int) -> None:
        if ack is not None:
            self.ack_s = ack
        self.win_s = window

    @property
    def complete(self) -> bool:
        """Both replicas have acknowledged something."""
        return self.ack_p is not None and self.ack_s is not None

    def merged_ack(self) -> Optional[int]:
        if not self.use_min_ack:
            return self.ack_p if self.ack_p is not None else self.ack_s
        if not self.complete:
            return None
        return seq_min(self.ack_p, self.ack_s)

    def merged_window(self) -> int:
        if not self.use_min_window:
            return self.win_p
        return min(self.win_p, self.win_s)

    def should_send_empty_ack(self) -> bool:
        """§3.4: the merged ACK advanced but there is no payload to carry it."""
        merged = self.merged_ack()
        if merged is None:
            return False
        if self.last_sent_ack is None:
            return True
        return seq_gt(merged, self.last_sent_ack)

    def note_sent(self, ack: Optional[int]) -> None:
        """Record the ACK value of a segment actually sent to the client."""
        if ack is not None:
            self.last_sent_ack = ack

    def note_empty_ack(self) -> None:
        """Record that the bridge synthesised an empty segment for this
        connection (the §3.4 deadlock-prevention path)."""
        self.empty_acks_sent += 1

    def __repr__(self) -> str:
        return (
            f"AckWindowMerge(ack_p={self.ack_p}, ack_s={self.ack_s},"
            f" win_p={self.win_p}, win_s={self.win_s},"
            f" last_sent={self.last_sent_ack})"
        )
