"""Sequence-number offset Δseq (§3.3).

At establishment the primary bridge records both initial sequence numbers
and computes ``Δseq = seq_P,init − seq_S,init``.  Every sequence number the
primary's TCP layer produces is mapped into the secondary's numbering by
subtracting Δseq; every acknowledgement arriving from the client (which is
synchronised to the *secondary's* numbering) is mapped back by adding Δseq
before the primary's TCP layer sees it.

The client is synchronised to S-space from the very first SYN, which is
what makes the §5 failover need no renumbering at all, and why §6 requires
the offset subtraction to continue forever after the secondary fails.
"""

from __future__ import annotations

from repro.tcp.seqnum import seq_add, seq_sub


class SeqOffset:
    """Bidirectional Δseq mapping between P-space and S-space."""

    __slots__ = ("delta",)

    def __init__(self, seq_p_init: int, seq_s_init: int):
        self.delta = seq_sub(seq_p_init, seq_s_init)

    @classmethod
    def identity(cls) -> "SeqOffset":
        """Zero offset (used when the secondary failed before establishment)."""
        offset = cls.__new__(cls)
        offset.delta = 0
        return offset

    def p_to_s(self, seq: int) -> int:
        """Map a primary-generated sequence number into S-space."""
        return seq_sub(seq, self.delta)

    def s_to_p(self, seq: int) -> int:
        """Map a client acknowledgement (S-space) into P-space."""
        return seq_add(seq, self.delta)

    def __repr__(self) -> str:
        return f"SeqOffset(delta={self.delta})"
