"""IP takeover: the §5 primary-failure procedure on the secondary.

Steps, as enumerated in the paper:

1. stop sending client-bound TCP segments (bridge holds them);
2. disable promiscuous receive mode;
3. disable the ``a_p → a_s`` inbound translation;
4. disable the ``a_c → a_p`` outbound translation;
5. take over the primary's IP address (gratuitous ARP).

Steps 1–4 are :meth:`SecondaryBridge.prepare_failover` plus deactivation;
step 5 acquires ``a_p`` on the interface and broadcasts a gratuitous ARP.
Every other node applies the new mapping after its own configured delay —
the router's delay is the paper's interval ``T``, during which client
segments are black-holed and recovered by ordinary TCP retransmission.

The procedure is an explicit state machine (:class:`TakeoverProcedure`):
``IDLE → SILENCED → ANNOUNCED → RESUMING → COMPLETE``, where the
``RESUMING`` hop exists only when a non-zero ``resume_delay`` models the
local reconfiguration window between the gratuitous ARP and the bridge
resuming transmission.  A takeover caught mid-flight by step-down
fencing (this host observed a conflicting gratuitous ARP and yielded
the address) moves to ``FENCED`` instead and never resumes — a fenced
loser arguing with the winner is exactly the dual-primary split the §5
procedure exists to prevent.  The transition graph is declared in
:mod:`repro.analysis.specs.takeover` and model-checked against this
file by ``repro lint --semantic``.

The simulated stack keys TCBs by local address, so the takeover also
re-homes the failover TCBs from ``a_s`` to ``a_p`` (the kernel
implementation expresses the same thing through its translation layer;
see DESIGN.md).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from repro.net.addresses import Ipv4Address
from repro.failover.options import FailoverConfig
from repro.failover.secondary import SecondaryBridge

if TYPE_CHECKING:
    from repro.net.host import Host


class TakeoverState(enum.Enum):
    """Lifecycle of one §5 takeover run."""

    IDLE = "IDLE"
    SILENCED = "SILENCED"  # steps 1-4 done: bridge holds, snoop off
    ANNOUNCED = "ANNOUNCED"  # step 5 done: a_p acquired, gratuitous ARP out
    RESUMING = "RESUMING"  # waiting out the local reconfiguration delay
    COMPLETE = "COMPLETE"  # bridge transmitting as the new primary
    FENCED = "FENCED"  # lost an address conflict mid-takeover; never resumes


#: States a step-down fence can interrupt; the terminal states and the
#: not-yet-started state are excluded (fencing them is a no-op).
FENCEABLE_STATES = (
    TakeoverState.SILENCED,
    TakeoverState.ANNOUNCED,
    TakeoverState.RESUMING,
)


class TakeoverProcedure:
    """One run of the §5 takeover on a secondary's bridge.

    :func:`perform_ip_takeover` constructs and immediately runs one;
    callers that need the fencing interlock (e.g.
    :class:`~repro.failover.replicated.ReplicatedServerPair`) keep the
    returned procedure and call :meth:`fence` when the host steps down.
    """

    def __init__(
        self,
        bridge: SecondaryBridge,
        primary_ip: Ipv4Address,
        resume_delay: float = 0.0,
        arp_guard_duration: float = 0.5,
    ):
        self.bridge = bridge
        self.primary_ip = primary_ip
        self.resume_delay = resume_delay
        self.arp_guard_duration = arp_guard_duration
        self.host: "Host" = bridge.host
        self.state = TakeoverState.IDLE
        self._span_ctx: Optional[object] = None

    def run(self) -> None:
        """Execute steps 1–5; schedules the resume when delay models one."""
        if self.state is not TakeoverState.IDLE:
            raise ValueError(f"takeover already started (state {self.state.value})")
        host = self.host
        config: FailoverConfig = self.bridge.config
        old_ip = host.ip.primary_address()

        # Takeover is a trace of its own: its spans attribute the §5
        # phases (silence → announce → resume) even when no sampled flow
        # crosses it.
        self._span_ctx = host.spans.trace_root(
            "failover.takeover", host.sim.now, host.name, ip=str(self.primary_ip)
        )

        # Steps 1-4: silence the bridge and stop snooping/translating.
        self.bridge.prepare_failover()
        self.state = TakeoverState.SILENCED

        # Step 5: acquire a_p and announce it.
        interface = host.eth_interface
        interface.add_address(self.primary_ip)
        if self.arp_guard_duration > 0:
            interface.arp.guard_ip(self.primary_ip, self.arp_guard_duration)
        rebind_failover_connections(host, config, old_ip, self.primary_ip)
        interface.arp.announce(self.primary_ip)
        self.state = TakeoverState.ANNOUNCED
        host.tracer.emit(
            host.sim.now, "takeover.announced", host.name, ip=str(self.primary_ip)
        )
        host.spans.event(
            self._span_ctx, "failover.announced", host.sim.now, host.name,
            ip=str(self.primary_ip),
        )

        if self.resume_delay > 0:
            self.state = TakeoverState.RESUMING
            host.sim.schedule(self.resume_delay, self._resume)
        else:
            self._resume()

    def _resume(self) -> None:
        """Bridge resumes transmission as the new primary (paper: "after
        the change of IP address is completed")."""
        if self.state not in (TakeoverState.ANNOUNCED, TakeoverState.RESUMING):
            return  # fenced while the resume was in flight
        self.bridge.complete_failover(self.primary_ip)
        self.state = TakeoverState.COMPLETE
        self.host.tracer.emit(self.host.sim.now, "takeover.complete", self.host.name)
        if self._span_ctx is not None:
            self.host.spans.finish(self._span_ctx, self.host.sim.now)

    def fence(self) -> None:
        """Step-down: this host lost the address mid-takeover.

        Safe to call in any state; only an in-flight run reacts.  A
        fenced procedure never resumes transmission — the scheduled
        :meth:`_resume` finds the state changed and does nothing.
        """
        if self.state not in FENCEABLE_STATES:
            return
        self.state = TakeoverState.FENCED
        self.host.tracer.emit(
            self.host.sim.now, "takeover.fenced", self.host.name,
            ip=str(self.primary_ip),
        )
        if self._span_ctx is not None:
            self.host.spans.finish(self._span_ctx, self.host.sim.now)


def perform_ip_takeover(
    bridge: SecondaryBridge,
    primary_ip: Ipv4Address,
    resume_delay: float = 0.0,
    arp_guard_duration: float = 0.5,
) -> TakeoverProcedure:
    """Run the §5 procedure on the secondary ``bridge``'s host.

    ``resume_delay`` models the local reconfiguration time between the
    gratuitous ARP and the bridge resuming transmission ("after the change
    of IP address is completed, the bridge resumes sending TCP segments").

    ``arp_guard_duration`` protects the freshly-acquired address from
    spoofed gratuitous ARP during the rebind: a forged claim inside the
    window is ignored (and answered with a corrective re-announce) rather
    than fencing the taker off the VIP it just acquired.

    Returns the running :class:`TakeoverProcedure` so callers can observe
    its state or :meth:`~TakeoverProcedure.fence` it on step-down.
    """
    procedure = TakeoverProcedure(
        bridge,
        primary_ip,
        resume_delay=resume_delay,
        arp_guard_duration=arp_guard_duration,
    )
    procedure.run()
    return procedure


def rebind_failover_connections(
    host: "Host", config: FailoverConfig, old_ip: Ipv4Address, new_ip: Ipv4Address
) -> None:
    """Re-home failover TCBs (and only those) onto a taken-over address.

    Public API: takeover (§5), chain head promotion and replica
    reintegration all re-key the TCBs that ``config`` covers from
    ``old_ip`` to ``new_ip`` without disturbing unreplicated connections.
    The kernel implementation expresses the same thing through its
    address-translation layer; re-keying is the simulated equivalent
    (see DESIGN.md).
    """
    moving = [
        conn
        for key, conn in list(host.tcp.connections.items())
        if key[0] == old_ip and config.covers(conn.local_port, conn.failover)
    ]
    for conn in moving:
        del host.tcp.connections[conn.key]
        conn.rebind_local_ip(new_ip)
        host.tcp.connections[conn.key] = conn
    # TIME_WAIT-retired failover TCBs live on only as linger records;
    # their stragglers follow the taken-over address too.
    host.tcp.rebind_lingering(old_ip, new_ip, config.covers)


# Backwards-compatible alias for the pre-public name.
_rebind_failover_connections = rebind_failover_connections
