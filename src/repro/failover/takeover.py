"""IP takeover: the §5 primary-failure procedure on the secondary.

Steps, as enumerated in the paper:

1. stop sending client-bound TCP segments (bridge holds them);
2. disable promiscuous receive mode;
3. disable the ``a_p → a_s`` inbound translation;
4. disable the ``a_c → a_p`` outbound translation;
5. take over the primary's IP address (gratuitous ARP).

Steps 1–4 are :meth:`SecondaryBridge.prepare_failover` plus deactivation;
step 5 acquires ``a_p`` on the interface and broadcasts a gratuitous ARP.
Every other node applies the new mapping after its own configured delay —
the router's delay is the paper's interval ``T``, during which client
segments are black-holed and recovered by ordinary TCP retransmission.

The simulated stack keys TCBs by local address, so the takeover also
re-homes the failover TCBs from ``a_s`` to ``a_p`` (the kernel
implementation expresses the same thing through its translation layer;
see DESIGN.md).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.net.addresses import Ipv4Address
from repro.failover.options import FailoverConfig
from repro.failover.secondary import SecondaryBridge

if TYPE_CHECKING:
    from repro.net.host import Host


def perform_ip_takeover(
    bridge: SecondaryBridge,
    primary_ip: Ipv4Address,
    resume_delay: float = 0.0,
    arp_guard_duration: float = 0.5,
) -> None:
    """Run the §5 procedure on the secondary ``bridge``'s host.

    ``resume_delay`` models the local reconfiguration time between the
    gratuitous ARP and the bridge resuming transmission ("after the change
    of IP address is completed, the bridge resumes sending TCP segments").

    ``arp_guard_duration`` protects the freshly-acquired address from
    spoofed gratuitous ARP during the rebind: a forged claim inside the
    window is ignored (and answered with a corrective re-announce) rather
    than fencing the taker off the VIP it just acquired.
    """
    host = bridge.host
    config = bridge.config
    old_ip = host.ip.primary_address()

    # Takeover is a trace of its own: its spans attribute the §5 phases
    # (silence → announce → resume) even when no sampled flow crosses it.
    takeover_ctx = host.spans.trace_root(
        "failover.takeover", host.sim.now, host.name, ip=str(primary_ip)
    )

    # Steps 1-4: silence the bridge and stop snooping/translating.
    bridge.prepare_failover()

    # Step 5: acquire a_p and announce it.
    interface = host.eth_interface
    interface.add_address(primary_ip)
    if arp_guard_duration > 0:
        interface.arp.guard_ip(primary_ip, arp_guard_duration)
    rebind_failover_connections(host, config, old_ip, primary_ip)
    interface.arp.announce(primary_ip)
    host.tracer.emit(host.sim.now, "takeover.announced", host.name, ip=str(primary_ip))
    host.spans.event(
        takeover_ctx, "failover.announced", host.sim.now, host.name,
        ip=str(primary_ip),
    )

    def resume() -> None:
        bridge.complete_failover(primary_ip)
        host.tracer.emit(host.sim.now, "takeover.complete", host.name)
        host.spans.finish(takeover_ctx, host.sim.now)

    if resume_delay > 0:
        host.sim.schedule(resume_delay, resume)
    else:
        resume()


def rebind_failover_connections(
    host: "Host", config: FailoverConfig, old_ip: Ipv4Address, new_ip: Ipv4Address
) -> None:
    """Re-home failover TCBs (and only those) onto a taken-over address.

    Public API: takeover (§5), chain head promotion and replica
    reintegration all re-key the TCBs that ``config`` covers from
    ``old_ip`` to ``new_ip`` without disturbing unreplicated connections.
    The kernel implementation expresses the same thing through its
    address-translation layer; re-keying is the simulated equivalent
    (see DESIGN.md).
    """
    moving = [
        conn
        for key, conn in list(host.tcp.connections.items())
        if key[0] == old_ip and config.covers(conn.local_port, conn.failover)
    ]
    for conn in moving:
        del host.tcp.connections[conn.key]
        conn.rebind_local_ip(new_ip)
        host.tcp.connections[conn.key] = conn


# Backwards-compatible alias for the pre-public name.
_rebind_failover_connections = rebind_failover_connections
