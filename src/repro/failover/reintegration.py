"""Replica reintegration: restore redundancy after a failover.

The paper leaves both failure paths permanently degraded: after §5 the
promoted secondary "behaves as a standard TCP server", and after §6 the
primary drops merging forever.  This module closes that gap — it takes a
restarted (or fresh) replica and re-admits it as a live secondary on
*established* connections, so a second crash is survivable.

The protocol is a five-phase state machine (traced so the flight
recorder can tile it; see DESIGN.md):

``quiesce``
    The survivor's bridge is flipped (back) into queue-matching merge
    mode *atomically with* the snapshot: from this instant no fresh byte
    is emitted unmatched — it parks in the P queue until the joiner's
    matching byte arrives.  Retransmissions below the emission
    high-water mark keep flowing through the §4 fast path, so the peer
    is never starved of data it already saw.
``snapshot``
    Every resumable failover TCB is exported in the *peer's* numbering
    (the survivor's Δseq is applied on export; the new pairing's Δseq is
    then the identity for a promoted survivor, or the original offset
    for a §6 primary).  Connections already closing are not resumed:
    they bypass the bridge and finish as ordinary TCP.
``install``
    After ``install_delay`` (models state-transfer time) the snapshots
    are installed into the joiner's TCP layer, a secondary bridge with
    promiscuous snoop + divert translations is installed, and the
    replicated application is warm-started via ``resume_app`` with the
    stream positions carried by each snapshot.
``rearm``
    Fault detectors are re-created on both sides (the caller's
    ``on_armed`` hook; :class:`~repro.failover.replicated.ReplicatedServerPair`
    also swaps its role bookkeeping here).
``merge``
    Runs until every resumed connection has emitted its first *matched*
    byte — from then on the pair is fully redundant again and another
    crash on either side is survivable.

The phases are explicit state (:class:`ReintegrationPhase`, carried on
the result): ``QUIESCE → SNAPSHOT → INSTALL → REARM → MERGE →
COMPLETE``, and every live phase aborts to ``ABORTED`` when either host
crashes mid-run (crash hooks registered on both sides) — a second crash
during reintegration must never install snapshots on a corpse or report
redundancy that does not exist.  The transition graph is declared in
:mod:`repro.analysis.specs.reintegration` and model-checked against
this file by ``repro lint --semantic``.

Address allocation: the survivor keeps the service address ``a_p`` it
took over (or always had); the joiner serves from its own configured
address behind the bridge translations, exactly like the paper's
original secondary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Generator, List, Optional, Set, Tuple

from repro.failover.delta import SeqOffset
from repro.failover.options import FailoverConfig
from repro.failover.primary import BridgeKey, ConnectionResume, PrimaryBridge
from repro.failover.secondary import SecondaryBridge
from repro.net.addresses import Ipv4Address
from repro.tcp.connection import (
    ConnectionReset,
    TcpConnection,
    TcpSnapshot,
    TcpState,
    TRANSFERABLE_STATES,
)
from repro.tcp.socket_api import SimSocket

if TYPE_CHECKING:
    from repro.net.host import Host
    from repro.sim.trace import Tracer


@dataclass
class AppResume:
    """Warm-sync context handed to a ``resume_app`` factory.

    ``written``/``read`` are the byte counts the *survivor's* application
    had produced/consumed on this connection at snapshot time; a
    deterministic replica resumes by regenerating (or copying) exactly
    that prefix and continuing from there.
    """

    written: int
    read: int
    snapshot: TcpSnapshot


# A resume-app factory: (joiner host, adopted socket, resume info) -> process.
ResumeApp = Callable[[object, SimSocket, AppResume], Generator]


class ReintegrationPhase(enum.Enum):
    """The five-phase machine from the module docstring, made explicit.

    ``QUIESCE``/``SNAPSHOT`` happen atomically inside the starting event;
    ``INSTALL``/``REARM``/``MERGE`` are separate simulation events, so a
    crash of either host can interleave — any live phase aborts.  The
    declared transition graph lives in
    :mod:`repro.analysis.specs.reintegration` and is model-checked
    against this file by ``repro lint --semantic``.
    """

    QUIESCE = "QUIESCE"
    SNAPSHOT = "SNAPSHOT"
    INSTALL = "INSTALL"
    REARM = "REARM"
    MERGE = "MERGE"
    COMPLETE = "COMPLETE"
    ABORTED = "ABORTED"


#: Phases during which a crash (or a second reintegration attempt) must
#: abort the run; the two terminal phases are excluded.
LIVE_PHASES = (
    ReintegrationPhase.QUIESCE,
    ReintegrationPhase.SNAPSHOT,
    ReintegrationPhase.INSTALL,
    ReintegrationPhase.REARM,
    ReintegrationPhase.MERGE,
)


@dataclass
class ReintegrationResult:
    """Mutable record of one reintegration run (completed asynchronously)."""

    case: str  # "rejoin" (survivor was promoted, §5) or "remerge" (§6)
    survivor: str
    joiner: str
    phase: ReintegrationPhase = ReintegrationPhase.QUIESCE
    resumed_keys: List[BridgeKey] = field(default_factory=list)
    bypassed_keys: List[BridgeKey] = field(default_factory=list)
    snapshot_bytes: int = 0
    primary_bridge: Optional[PrimaryBridge] = None
    joiner_bridge: Optional[SecondaryBridge] = None
    conns: List[TcpConnection] = field(default_factory=list)
    installed: bool = False
    merge_complete: bool = False

    @property
    def resumed(self) -> int:
        return len(self.resumed_keys)

    @property
    def bypassed(self) -> int:
        return len(self.bypassed_keys)

    @property
    def aborted(self) -> bool:
        return self.phase is ReintegrationPhase.ABORTED


def export_resumable_connections(
    survivor: "Host",
    config: FailoverConfig,
    bridge: Optional[PrimaryBridge],
) -> Tuple[List[TcpSnapshot], List[ConnectionResume], List[BridgeKey]]:
    """Snapshot the survivor's resumable failover TCBs.

    Returns ``(snapshots, resumes, bypass_keys)``.  A connection resumes
    when it is in a transferable state and its bridge state (if any) is
    not broken; its Δseq comes from the existing bridge connection when
    one exists (§6 survivor, still in the primary's own numbering) and is
    the identity otherwise (promoted survivor, already in peer numbering).

    Half-open connections (handshake not finished) are *dropped* locally
    instead of bypassed: nothing is acked to the peer beyond the ISN, so
    the peer's SYN retransmission re-establishes through the restored
    merge bridge as a fully replicated connection — bypassing them would
    leave the eventual connection unprotected on the survivor forever.
    """
    snapshots: List[TcpSnapshot] = []
    resumes: List[ConnectionResume] = []
    bypass: List[BridgeKey] = []
    for conn in list(survivor.tcp.connections.values()):
        if not config.covers(conn.local_port, conn.failover):
            continue
        key: BridgeKey = (conn.remote_ip, conn.remote_port, conn.local_port)
        bc = bridge.connections.get(key) if bridge is not None else None
        delta = bc.delta if bc is not None and bc.delta is not None else SeqOffset.identity()
        resumable = conn.state in TRANSFERABLE_STATES and not (
            bc is not None and bc.broken
        )
        if not resumable:
            if conn.state in (TcpState.SYN_SENT, TcpState.SYN_RCVD):
                conn._destroy(ConnectionReset(
                    f"{survivor.name}: half-open at reintegration"
                ))
                if bridge is not None:
                    bridge.connections.pop(key, None)
                continue
            if bc is None:
                # No bridge state to keep it coherent: let it finish as
                # plain TCP, unbridged.
                bypass.append(key)
            continue
        snap = conn.export_state(map_seq=delta.p_to_s)
        snapshots.append(snap)
        resumes.append(
            ConnectionResume(
                peer_ip=conn.remote_ip,
                peer_port=conn.remote_port,
                local_ip=conn.local_ip,
                local_port=conn.local_port,
                delta=delta,
                frontier=snap.snd_max,
                ack=snap.rcv_nxt,
                window=snap.recv_window,
                mss=snap.mss,
                role="server",
                peer_fin_end=snap.rcv_nxt if snap.fin_received else None,
            )
        )
    return snapshots, resumes, bypass


def perform_reintegration(
    survivor: "Host",
    joiner: "Host",
    config: FailoverConfig,
    service_ip: Ipv4Address,
    primary_bridge: Optional[PrimaryBridge] = None,
    install_delay: float = 200e-6,
    resume_app: Optional[ResumeApp] = None,
    warm_sync: Optional[Callable[["Host", "Host"], None]] = None,
    on_armed: Optional[Callable[[ReintegrationResult], None]] = None,
    bridge_cost: float = 15e-6,
    emit_cost: float = 25e-6,
    ack_merging: bool = True,
    window_merging: bool = True,
    tracer: Optional["Tracer"] = None,
) -> ReintegrationResult:
    """Re-admit ``joiner`` as the live secondary of ``survivor``.

    Pass ``primary_bridge`` when the survivor already runs one (a §6
    primary whose secondary died — its connections flip back from direct
    mode); leave it ``None`` for a promoted survivor (a fresh merging
    bridge is built, identity Δseq).  ``on_armed`` runs inside the
    install event, after the joiner's bridge and connections are live —
    detector re-arming and role bookkeeping belong there.

    ``warm_sync(survivor, joiner)`` runs once at install time, *before*
    the per-connection resume apps, and regardless of whether any
    connection is still resumable: application state whose connections
    already closed (bytes acked to a client and then delivered to the
    app) must be copied too, or a second failure of the survivor loses
    them even though the transport layer never did.
    """
    sim = survivor.sim
    tracer = tracer or survivor.tracer
    joiner_ip = joiner.ip.primary_address()
    case = "remerge" if primary_bridge is not None else "rejoin"
    metrics = survivor.metrics
    m_attempts = metrics.counter("reintegration.attempts", host=survivor.name)
    m_resumed = metrics.counter("reintegration.connections_resumed", host=survivor.name)
    m_bypassed = metrics.counter("reintegration.connections_bypassed", host=survivor.name)
    m_bytes = metrics.counter("reintegration.snapshot_bytes", host=survivor.name)
    m_complete = metrics.counter("reintegration.completed", host=survivor.name)
    m_attempts.inc()

    result = ReintegrationResult(case=case, survivor=survivor.name, joiner=joiner.name)
    tracer.emit(
        sim.now, "reintegration.start", survivor.name,
        joiner=joiner.name, case=case,
    )

    # ---- quiesce + snapshot: one atomic simulation event --------------
    if primary_bridge is None:
        bridge = PrimaryBridge(
            survivor,
            config,
            joiner_ip,
            tracer=tracer,
            bridge_cost=bridge_cost,
            emit_cost=emit_cost,
            ack_merging=ack_merging,
            window_merging=window_merging,
        )
    else:
        bridge = primary_bridge
    result.primary_bridge = bridge

    snapshots, resumes, bypass = export_resumable_connections(survivor, config, bridge)
    bridge.bypass_keys.update(bypass)
    if survivor.bridge is not bridge:
        bridge.install()
    bridge.resume_merge(joiner_ip, resumes)
    result.resumed_keys = [r.key for r in resumes]
    result.bypassed_keys = list(bypass)
    result.snapshot_bytes = sum(
        len(s.send_data) + len(s.recv_pending) for s in snapshots
    )
    m_resumed.inc(len(resumes))
    m_bypassed.inc(len(bypass))
    m_bytes.inc(result.snapshot_bytes)
    tracer.emit(
        sim.now, "reintegration.snapshot", survivor.name,
        conns=len(snapshots), bypassed=len(bypass), bytes=result.snapshot_bytes,
    )
    result.phase = ReintegrationPhase.SNAPSHOT

    # ---- merge-completion watch ---------------------------------------
    pending: Set[BridgeKey] = set(result.resumed_keys)

    def merged(key: BridgeKey) -> None:
        pending.discard(key)
        if not pending and not result.merge_complete:
            complete()

    def complete() -> None:
        if result.phase is not ReintegrationPhase.MERGE:
            return  # aborted mid-flight, or a stray late merge callback
        result.phase = ReintegrationPhase.COMPLETE
        result.merge_complete = True
        detach_hooks()
        m_complete.inc()
        tracer.emit(
            sim.now, "reintegration.complete", survivor.name,
            resumed=result.resumed, joiner=joiner.name,
        )

    def abort(reason: str) -> None:
        if result.phase not in LIVE_PHASES:
            return
        result.phase = ReintegrationPhase.ABORTED
        detach_hooks()
        tracer.emit(
            sim.now, "reintegration.aborted", survivor.name,
            joiner=joiner.name, reason=reason,
        )

    def _abort_on_crash(host: "Host") -> None:
        abort(f"{host.name} crashed")

    def detach_hooks() -> None:
        survivor.remove_crash_hook(_abort_on_crash)
        joiner.remove_crash_hook(_abort_on_crash)

    survivor.add_crash_hook(_abort_on_crash)
    joiner.add_crash_hook(_abort_on_crash)

    if pending:
        bridge.on_resume_merged = merged

    # ---- install on the joiner after the transfer delay ---------------
    def do_install() -> None:
        if result.phase is not ReintegrationPhase.SNAPSHOT:
            return  # a crash hook already aborted the run
        if not joiner.alive or not survivor.alive:
            abort("host dead at install time")
            return
        result.phase = ReintegrationPhase.INSTALL
        joiner_bridge = SecondaryBridge(
            joiner, config.copy(), service_ip,
            tracer=tracer, bridge_cost=bridge_cost,
        )
        conns: List[TcpConnection] = []
        for snap in snapshots:
            conns.append(joiner.tcp.install_connection(snap, local_ip=joiner_ip))
        joiner_bridge.install()
        # Refresh the segment's idea of our MAC (stale caches from before
        # the crash would black-hole heartbeats to the reborn NIC).
        joiner.eth_interface.arp.announce(joiner_ip)
        result.joiner_bridge = joiner_bridge
        result.conns = conns
        result.installed = True
        tracer.emit(
            sim.now, "reintegration.installed", joiner.name,
            conns=len(conns), survivor=survivor.name,
        )
        if warm_sync is not None:
            warm_sync(survivor, joiner)
        if resume_app is not None:
            for conn, snap in zip(conns, snapshots):
                joiner.spawn(
                    resume_app(
                        joiner,
                        SimSocket(conn),
                        AppResume(
                            written=snap.stream_written,
                            read=snap.stream_read,
                            snapshot=snap,
                        ),
                    ),
                    f"resume@{joiner.name}:{conn.local_port}",
                )
        result.phase = ReintegrationPhase.REARM
        if on_armed is not None:
            on_armed(result)
        tracer.emit(
            sim.now, "reintegration.armed", survivor.name, joiner=joiner.name
        )
        result.phase = ReintegrationPhase.MERGE
        if not pending:
            complete()  # nothing to merge: redundancy is restored already

    sim.schedule(install_delay, do_install)
    return result
