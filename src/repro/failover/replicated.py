"""One-call assembly of a replicated TCP-failover server pair.

Wires the primary and secondary bridges, the fault detectors (in both
directions — §5 and §6 are symmetric in who watches whom) and runs the
same application factory on both hosts.  The application must be
deterministic per connection (§1); the bridge detects divergence and the
tests assert on it.
"""

from __future__ import annotations

from typing import Callable, Generator, Iterable, List, Optional

from repro.failover.detector import FaultDetector
from repro.failover.options import FailoverConfig
from repro.failover.primary import PrimaryBridge
from repro.failover.secondary import SecondaryBridge
from repro.failover.takeover import perform_ip_takeover
from repro.net.host import Host


class ReplicatedServerPair:
    """A primary/secondary pair running an actively replicated service."""

    def __init__(
        self,
        primary: Host,
        secondary: Host,
        failover_ports: Iterable[int] = (),
        detector_interval: float = 0.010,
        detector_timeout: float = 0.050,
        takeover_resume_delay: float = 200e-6,
        bridge_cost: float = 15e-6,
        emit_cost: float = 25e-6,
        ack_merging: bool = True,
        window_merging: bool = True,
        auto_recover: bool = True,
    ):
        if primary.sim is not secondary.sim:
            raise ValueError("both hosts must share one simulator")
        self.sim = primary.sim
        self.primary = primary
        self.secondary = secondary
        self.primary_ip = primary.ip.primary_address()
        self.secondary_ip = secondary.ip.primary_address()
        self.takeover_resume_delay = takeover_resume_delay
        self.auto_recover = auto_recover
        # §7: "the user must specify the same set of ports on the primary
        # server host and the secondary server host" — one config, two copies.
        self.primary_config = FailoverConfig(failover_ports)
        self.secondary_config = self.primary_config.copy()

        self.primary_bridge = PrimaryBridge(
            primary,
            self.primary_config,
            self.secondary_ip,
            bridge_cost=bridge_cost,
            emit_cost=emit_cost,
            ack_merging=ack_merging,
            window_merging=window_merging,
        )
        self.secondary_bridge = SecondaryBridge(
            secondary, self.secondary_config, self.primary_ip, bridge_cost=bridge_cost
        )
        self.primary_bridge.install()
        self.secondary_bridge.install()

        self.primary_detector = FaultDetector(
            primary,
            self.secondary_ip,
            on_failure=self._secondary_failed,
            interval=detector_interval,
            timeout=detector_timeout,
        )
        self.secondary_detector = FaultDetector(
            secondary,
            self.primary_ip,
            on_failure=self._primary_failed,
            interval=detector_interval,
            timeout=detector_timeout,
        )
        self.failed_over = False
        self.secondary_removed = False
        self._apps: List[object] = []

    # ------------------------------------------------------------------
    # configuration and application startup
    # ------------------------------------------------------------------

    def add_failover_port(self, port: int) -> None:
        self.primary_config.add_port(port)
        self.secondary_config.add_port(port)

    def start_detectors(self) -> None:
        self.primary_detector.start()
        self.secondary_detector.start()

    def run_app(
        self, factory: Callable[[Host], Generator], name: str = "app"
    ) -> None:
        """Run the same (deterministic) application on both replicas."""
        self._apps.append(self.primary.spawn(factory(self.primary), f"{name}@P"))
        self._apps.append(self.secondary.spawn(factory(self.secondary), f"{name}@S"))

    # ------------------------------------------------------------------
    # failures
    # ------------------------------------------------------------------

    def crash_primary(self) -> None:
        """Fail-stop the primary; recovery runs when the detector fires."""
        self.primary.crash()
        if not self.auto_recover:
            return

    def crash_secondary(self) -> None:
        self.secondary.crash()
        if not self.auto_recover:
            return

    def _primary_failed(self) -> None:
        """Detector on the secondary fired: run the §5 takeover."""
        if self.failed_over:
            return
        self.failed_over = True
        perform_ip_takeover(
            self.secondary_bridge,
            self.primary_ip,
            resume_delay=self.takeover_resume_delay,
        )

    def _secondary_failed(self) -> None:
        """Detector on the primary fired: run the §6 procedure."""
        if self.secondary_removed:
            return
        self.secondary_removed = True
        self.primary_bridge.secondary_failed()

    # ------------------------------------------------------------------
    # manual triggers (tests/benchmarks that want exact timing)
    # ------------------------------------------------------------------

    def force_primary_failover(self) -> None:
        self._primary_failed()

    def force_secondary_removal(self) -> None:
        self._secondary_failed()

    @property
    def service_ip(self):
        """The address clients connect to (always the primary's)."""
        return self.primary_ip
