"""One-call assembly of a replicated TCP-failover server pair.

Wires the primary and secondary bridges, the fault detectors (in both
directions — §5 and §6 are symmetric in who watches whom) and runs the
same application factory on both hosts.  The application must be
deterministic per connection (§1); the bridge detects divergence and the
tests assert on it.

Beyond the paper, the pair also *recovers redundancy*: after a failover,
a restarted replica can be re-admitted as the live secondary
(:meth:`ReplicatedServerPair.reintegrate`), returning the pair to the
initial two-replica configuration with roles swapped — so a second
crash, on either side, is again survivable.  The paper leaves both
post-failure states degraded forever (§5: the promoted secondary
"behaves as a standard TCP server"; §6: the primary stays in direct
mode); see DESIGN.md for the reintegration state machine.
"""

from __future__ import annotations

from typing import Callable, Generator, Iterable, List, Optional

from repro.failover.detector import FaultDetector
from repro.net.addresses import Ipv4Address, MacAddress
from repro.failover.options import FailoverConfig
from repro.failover.primary import PrimaryBridge
from repro.failover.reintegration import (
    ReintegrationResult,
    ResumeApp,
    perform_reintegration,
)
from repro.failover.secondary import SecondaryBridge
from repro.failover.takeover import TakeoverProcedure, perform_ip_takeover
from repro.net.host import Host
from repro.obs.spans import SpanContext


class ReplicatedServerPair:
    """A primary/secondary pair running an actively replicated service."""

    def __init__(
        self,
        primary: Host,
        secondary: Host,
        failover_ports: Iterable[int] = (),
        detector_interval: float = 0.010,
        detector_timeout: float = 0.050,
        takeover_resume_delay: float = 200e-6,
        bridge_cost: float = 15e-6,
        emit_cost: float = 25e-6,
        ack_merging: bool = True,
        window_merging: bool = True,
        auto_recover: bool = True,
        auto_reintegrate: bool = False,
        reintegrate_delay: float = 0.020,
        reintegrate_install_delay: float = 200e-6,
    ):
        if primary.sim is not secondary.sim:
            raise ValueError("both hosts must share one simulator")
        self.sim = primary.sim
        self.primary = primary
        self.secondary = secondary
        self.primary_ip = primary.ip.primary_address()
        self.secondary_ip = secondary.ip.primary_address()
        self.takeover_resume_delay = takeover_resume_delay
        self.auto_recover = auto_recover
        self.auto_reintegrate = auto_reintegrate
        self.reintegrate_delay = reintegrate_delay
        self.reintegrate_install_delay = reintegrate_install_delay
        self.detector_interval = detector_interval
        self.detector_timeout = detector_timeout
        self.bridge_cost = bridge_cost
        self.emit_cost = emit_cost
        self.ack_merging = ack_merging
        self.window_merging = window_merging
        # §7: "the user must specify the same set of ports on the primary
        # server host and the secondary server host" — one config, two copies.
        self.primary_config = FailoverConfig(failover_ports)
        self.secondary_config = self.primary_config.copy()

        self.primary_bridge = PrimaryBridge(
            primary,
            self.primary_config,
            self.secondary_ip,
            bridge_cost=bridge_cost,
            emit_cost=emit_cost,
            ack_merging=ack_merging,
            window_merging=window_merging,
        )
        self.secondary_bridge = SecondaryBridge(
            secondary, self.secondary_config, self.primary_ip, bridge_cost=bridge_cost
        )
        self.primary_bridge.install()
        self.secondary_bridge.install()

        # Step-down fencing allowlist: only the peer replica's gratuitous
        # ARP may fence this side off an address.  Without it, any host on
        # the segment could forge one announcement and knock the live
        # primary out of service (see tests/adversary).
        if (
            primary._eth_interface is not None
            and secondary._eth_interface is not None
        ):
            primary.eth_interface.arp.trusted_claimants.add(secondary.nic.mac)
            secondary.eth_interface.arp.trusted_claimants.add(primary.nic.mac)

        self.primary_detector = FaultDetector(
            primary,
            self.secondary_ip,
            on_failure=self._secondary_failed,
            interval=detector_interval,
            timeout=detector_timeout,
        )
        self.secondary_detector = FaultDetector(
            secondary,
            self.primary_ip,
            on_failure=self._primary_failed,
            interval=detector_interval,
            timeout=detector_timeout,
        )
        self.failed_over = False
        self.secondary_removed = False
        # The in-flight (or completed) §5 takeover procedure, if any.
        self.takeover: Optional[TakeoverProcedure] = None
        self._apps: List[object] = []
        self._detectors_started = False
        self._resume_app: Optional[ResumeApp] = None
        self._warm_sync: Optional[Callable[[Host, Host], None]] = None
        self._app_factory: Optional[Callable[[Host], Generator]] = None
        # Callbacks fired (with this pair) after each completed re-arm;
        # invariant checkers use them to re-attach to the new bridge.
        self.on_reintegrated: List[Callable[["ReplicatedServerPair"], None]] = []
        self.reintegrations: List[ReintegrationResult] = []
        # Open root span of an in-flight reintegration (closed in _rearm).
        self._reintegrate_ctx: Optional[SpanContext] = None
        # Step-down fencing: if a host of this pair fences an address
        # (it was falsely suspected and a peer took over), silence its
        # failover plane too — detector and bridge.
        for host in (primary, secondary):
            host.add_address_conflict_handler(self._make_fence_handler(host))
            host.add_restart_hook(self._replica_restarted)

    # ------------------------------------------------------------------
    # configuration and application startup
    # ------------------------------------------------------------------

    def add_failover_port(self, port: int) -> None:
        self.primary_config.add_port(port)
        self.secondary_config.add_port(port)

    def start_detectors(self) -> None:
        self._detectors_started = True
        self.primary_detector.start()
        self.secondary_detector.start()

    def run_app(
        self, factory: Callable[[Host], Generator], name: str = "app"
    ) -> None:
        """Run the same (deterministic) application on both replicas."""
        self._app_factory = factory
        self._apps.append(self.primary.spawn(factory(self.primary), f"{name}@P"))
        self._apps.append(self.secondary.spawn(factory(self.secondary), f"{name}@S"))

    def set_resume_app(self, factory: Optional[ResumeApp]) -> None:
        """Warm-sync factory used to restart the app on a rejoining replica.

        Called once per resumed connection as ``factory(host, socket,
        resume)`` where ``resume`` carries the byte counts the survivor's
        application had already written/read (see
        :class:`~repro.failover.reintegration.AppResume`).
        """
        self._resume_app = factory

    def set_warm_sync(self, sync: Optional[Callable[[Host, Host], None]]) -> None:
        """Whole-application state copy run once at reintegration install.

        ``sync(survivor, joiner)`` must bring over application state whose
        connections have already closed — the per-connection resume app
        only covers live connections, and bytes the survivor acked before
        the joiner came back would otherwise die with the survivor."""
        self._warm_sync = sync

    # ------------------------------------------------------------------
    # failures
    # ------------------------------------------------------------------

    def crash_primary(self) -> None:
        """Fail-stop the primary; recovery runs when the detector fires."""
        self.primary.crash()
        if not self.auto_recover:
            return

    def crash_secondary(self) -> None:
        self.secondary.crash()
        if not self.auto_recover:
            return

    def _primary_failed(self) -> None:
        """Detector on the secondary fired: run the §5 takeover."""
        if self.failed_over:
            return
        self.failed_over = True
        self.takeover = perform_ip_takeover(
            self.secondary_bridge,
            self.primary_ip,
            resume_delay=self.takeover_resume_delay,
        )

    def _secondary_failed(self) -> None:
        """Detector on the primary fired: run the §6 procedure."""
        if self.secondary_removed:
            return
        self.secondary_removed = True
        self.primary_bridge.secondary_failed()

    # ------------------------------------------------------------------
    # manual triggers (tests/benchmarks that want exact timing)
    # ------------------------------------------------------------------

    def force_primary_failover(self) -> None:
        self._primary_failed()

    def force_secondary_removal(self) -> None:
        self._secondary_failed()

    @property
    def service_ip(self) -> Ipv4Address:
        """The address clients connect to (survives every role change)."""
        return self.primary_ip

    # ------------------------------------------------------------------
    # step-down fencing (false suspicion)
    # ------------------------------------------------------------------

    def _make_fence_handler(
        self, host: Host
    ) -> Callable[[Ipv4Address, MacAddress], None]:
        def handler(ip: Ipv4Address, mac: MacAddress) -> None:
            self._host_fenced(host)

        return handler

    def _host_fenced(self, host: Host) -> None:
        """``host`` yielded an address after a conflict: take its failover
        plane down too, so the fenced loser never argues with the taker."""
        if host is self.primary:
            self.primary_detector.stop()
        elif host is self.secondary:
            self.secondary_detector.stop()
        if self.takeover is not None and self.takeover.host is host:
            # An in-flight §5 takeover on the fenced host must never
            # resume transmission on the address it just yielded.
            self.takeover.fence()
        host.remove_bridge()

    # ------------------------------------------------------------------
    # reintegration: restore redundancy after a failover
    # ------------------------------------------------------------------

    def _replica_restarted(self, host: Host) -> None:
        """Restart hook: optionally re-admit the reborn replica."""
        if not self.auto_reintegrate:
            return
        self.sim.schedule(self.reintegrate_delay, self._auto_rejoin, host)

    def _auto_rejoin(self, host: Host) -> None:
        if not host.alive:
            return
        if self.failed_over and not self.secondary_removed and host is self.primary:
            pass
        elif self.secondary_removed and not self.failed_over and host is self.secondary:
            pass
        else:
            return  # crashed again meanwhile, or no failover happened yet
        self.reintegrate(joiner=host)

    def reintegrate(
        self,
        joiner: Optional[Host] = None,
        install_delay: Optional[float] = None,
    ) -> ReintegrationResult:
        """Re-admit ``joiner`` (default: the replica that died) as the live
        secondary of the current survivor.

        Two cases, mirroring the two failure paths:

        * after a §5 takeover (``failed_over``) the survivor is the
          promoted secondary — it keeps the service address; the joiner
          takes over the survivor's native address (a full address swap
          when the joiner is the reborn old primary, which still owns the
          service address from before its crash);
        * after a §6 removal (``secondary_removed``) the survivor is the
          original primary and its existing bridge flips back from direct
          to merge mode; no addresses move.

        Either way the pair ends in the initial configuration (possibly
        with the hosts' roles swapped) and both failure paths are armed
        again.  Returns the (asynchronously completed)
        :class:`~repro.failover.reintegration.ReintegrationResult`.
        """
        if self.failed_over and self.secondary_removed:
            raise RuntimeError("no survivor left to reintegrate with")
        if not (self.failed_over or self.secondary_removed):
            raise RuntimeError("no failover happened; nothing to reintegrate")
        if install_delay is None:
            install_delay = self.reintegrate_install_delay
        rejoin = self.failed_over
        survivor = self.secondary if rejoin else self.primary
        joiner = joiner or (self.primary if rejoin else self.secondary)
        if not survivor.alive:
            raise RuntimeError(f"survivor {survivor.name} is not alive")
        if not joiner.alive:
            raise RuntimeError(f"joiner {joiner.name} is not alive")

        # The old detectors are dead weight either way (their peer died,
        # or they already fired); drop their heartbeat handlers too.
        self.primary_detector.detach()
        self.secondary_detector.detach()

        if rejoin:
            # Address swap: the survivor keeps only the service address it
            # took over; the reborn old primary (which still owns the
            # service address from before its crash) takes the survivor's
            # native address instead.  A fresh joiner keeps its own.
            service = self.primary_ip
            if joiner.ip.owns(service):
                standby = survivor.ip.primary_address()
                joiner.eth_interface.add_address(standby)
                joiner.eth_interface.remove_address(service)
                if survivor.ip.owns(standby) and standby != service:
                    survivor.eth_interface.remove_address(standby)

        # One trace spans the whole re-admission: quiesce/copy through the
        # install event that rearms the pair (finished in _rearm).
        reintegrate_ctx = survivor.spans.trace_root(
            "failover.reintegrate", survivor.sim.now, survivor.name,
            survivor=survivor.name, joiner=joiner.name,
        )
        self._reintegrate_ctx = reintegrate_ctx

        result = perform_reintegration(
            survivor,
            joiner,
            self.secondary_config if rejoin else self.primary_config,
            service_ip=self.primary_ip,
            primary_bridge=None if rejoin else self.primary_bridge,
            install_delay=install_delay,
            resume_app=self._resume_app,
            warm_sync=self._warm_sync,
            on_armed=lambda res: self._rearm(res, survivor, joiner),
            bridge_cost=self.bridge_cost,
            emit_cost=self.emit_cost,
            ack_merging=self.ack_merging,
            window_merging=self.window_merging,
        )
        self.reintegrations.append(result)
        return result

    def _rearm(self, result: ReintegrationResult, survivor: Host, joiner: Host) -> None:
        """Runs inside the install event: swap roles, re-create detectors."""
        ctx = self._reintegrate_ctx
        if ctx is not None:
            survivor.spans.finish(
                ctx, survivor.sim.now,
                resumed=result.resumed, bypassed=result.bypassed,
            )
            self._reintegrate_ctx = None
        self.primary = survivor
        self.secondary = joiner
        self.secondary_ip = joiner.ip.primary_address()
        self.primary_bridge = result.primary_bridge
        self.secondary_bridge = result.joiner_bridge
        self.failed_over = False
        self.secondary_removed = False
        self.takeover = None
        self.primary_detector = FaultDetector(
            self.primary,
            self.secondary_ip,
            on_failure=self._secondary_failed,
            interval=self.detector_interval,
            timeout=self.detector_timeout,
        )
        self.secondary_detector = FaultDetector(
            self.secondary,
            self.primary_ip,
            on_failure=self._primary_failed,
            interval=self.detector_interval,
            timeout=self.detector_timeout,
        )
        if self._detectors_started:
            self.primary_detector.start()
            self.secondary_detector.start()
        # The joiner's application processes died with its crash: restart
        # the replicated app so *new* connections replicate on both sides
        # again (resumed ones are handled by the per-connection resume app).
        if self._app_factory is not None:
            self._apps.append(
                joiner.spawn(self._app_factory(joiner), f"app@{joiner.name}")
            )
        for callback in list(self.on_reintegrated):
            callback(self)
