"""Daisy-chained N-way replication (§1: "higher degrees of replication
can be achieved by daisy-chaining multiple backup servers" — mentioned by
the paper, not described; this module works out the construction).

Topology for a chain of K replicas ``head, m1, m2, ..., tail``::

    client ⇆ head ⇆ m1 ⇆ ... ⇆ tail        (all on one snoopable segment)

* every non-head replica snoops the client's datagrams in promiscuous
  mode and feeds them to its own TCP stack (as the paper's secondary);
* the **tail** diverts its TCP output to its upstream neighbour;
* every **intermediate** runs a merging bridge exactly like the paper's
  primary — but instead of emitting the merged segments to the client it
  diverts them to *its* upstream neighbour;
* the **head** runs the paper's primary bridge unchanged.

Why this composes: the intermediate's Δseq maps its own numbering onto
its *downstream's* numbering, so what it forwards upstream is already in
tail-space; the head's Δseq then maps head-space onto tail-space too.
The client is synchronised to the **tail's** sequence numbers, and the
forwarded ACK/window are ``min`` over the whole chain (min cascades).

Failures:

* head dies → its neighbour performs the §5 takeover and becomes head
  (it stops diverting; its own merging bridge keeps protecting the rest
  of the chain);
* an intermediate dies → its neighbours splice around it: the downstream
  replica re-aims its diversion at the upstream one.  No sequence
  adjustment is needed anywhere, because everything the dead node ever
  forwarded was already in tail-space;
* tail dies → its upstream neighbour runs the §6 procedure (flush +
  direct mode) and the chain shortens by one.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, Iterable, List, Optional

import dataclasses

from repro.failover.delta import SeqOffset
from repro.failover.detector import FaultDetector
from repro.failover.options import FailoverConfig
from repro.failover.primary import PrimaryBridge
from repro.failover.reintegration import ResumeApp, export_resumable_connections
from repro.failover.takeover import rebind_failover_connections
from repro.net.addresses import Ipv4Address
from repro.net.host import Host
from repro.net.packet import IPPROTO_TCP, Ipv4Datagram
from repro.sim.trace import Tracer
from repro.tcp.segment import TcpSegment, incremental_rewrite


class ChainBridge(PrimaryBridge):
    """A merging bridge whose client-bound emissions are diverted upstream.

    Used by every chain position except the head.  It combines the roles
    of the paper's two bridges: *secondary-style* snooping/translation on
    the receive side, *primary-style* queue matching on the send side —
    with the merged result diverted to ``upstream_ip`` instead of sent to
    the peer.
    """

    def __init__(
        self,
        host: Host,
        config: FailoverConfig,
        downstream_ip: Optional[Ipv4Address],
        upstream_ip: Ipv4Address,
        service_ip: Ipv4Address,
        tracer: Optional[Tracer] = None,
        bridge_cost: float = 15e-6,
        emit_cost: float = 25e-6,
    ):
        # ``secondary_ip`` in the parent is "where my merge partner's
        # segments come from"; for a chain node that is its downstream.
        super().__init__(
            host,
            config,
            downstream_ip if downstream_ip is not None else upstream_ip,
            tracer=tracer,
            bridge_cost=bridge_cost,
            emit_cost=emit_cost,
        )
        self.upstream_ip = upstream_ip
        self.service_ip = service_ip  # the client-visible address (a_p)
        self.is_head = False
        self.is_tail = downstream_ip is None
        if self.is_tail:
            # A tail has no merge partner: behave as §6 direct mode from
            # the start, i.e. pure divert like the paper's secondary.
            self.secondary_down = True
        self.segments_translated_in = 0
        self.segments_diverted_up = 0

    def install(self) -> None:
        super().install()
        if not self.is_head:
            self.host.nic.set_promiscuous(True)

    # -- receive side -------------------------------------------------------

    def datagram_from_ip(self, datagram: Ipv4Datagram) -> Optional[Ipv4Datagram]:
        if self.is_head:
            return super().datagram_from_ip(datagram)
        if datagram.protocol != IPPROTO_TCP:
            # Own heartbeats etc. pass; snooped non-TCP is dropped.
            return datagram if self.host.ip.owns(datagram.dst) else None
        segment = datagram.payload
        if segment.orig_dst_option is not None and self.host.ip.owns(datagram.dst):
            # Diverted segments from our downstream: merge them.
            return super().datagram_from_ip(datagram)
        if datagram.dst == self.service_ip:
            # Snooped client traffic: translate a_p -> a_self (the §3.1
            # translation), but first run the head-style bookkeeping
            # (ACK rewrite into our own numbering, FIN tracking).
            flag = False
            if not self._covers(segment.dst_port, flag):
                return None
            local = self.host.ip.primary_address()
            rewritten_dgram = super()._from_peer_datagram(datagram, segment)
            if rewritten_dgram is None:
                return None
            inner = rewritten_dgram.payload
            translated = incremental_rewrite(
                inner,
                old_src=rewritten_dgram.src,
                old_dst=rewritten_dgram.dst,
                new_dst=local,
            )
            self.segments_translated_in += 1
            from dataclasses import replace

            return replace(rewritten_dgram, dst=local, payload=translated)
        if self.host.ip.owns(datagram.dst):
            return datagram
        return None  # snooped traffic that is not for the service

    # -- send side ------------------------------------------------------------

    def _send_datagram(
        self, segment: TcpSegment, src_ip: Ipv4Address, dst_ip: Ipv4Address
    ) -> None:
        if self.is_head:
            super()._send_datagram(segment, src_ip, dst_ip)
            return
        if dst_ip == self.secondary_ip or self.host.ip.owns(dst_ip):
            # §8 synthesised ACKs toward the downstream: deliver directly.
            super()._send_datagram(segment, src_ip, dst_ip)
            return
        # Merged client-bound segment: divert it upstream with ORIG_DST,
        # exactly as the paper's secondary diverts its TCP output.
        diverted = incremental_rewrite(
            segment,
            old_src=src_ip,
            old_dst=dst_ip,
            new_dst=self.upstream_ip,
            orig_dst=dst_ip,
        )
        self.segments_diverted_up += 1
        super()._send_datagram(diverted, src_ip, self.upstream_ip)

    # -- role changes -----------------------------------------------------------

    def become_head(self) -> None:
        """§5 takeover: stop snooping/diverting; emit directly."""
        self.is_head = True
        self.host.nic.set_promiscuous(False)

    def retarget_upstream(self, new_upstream: Ipv4Address) -> None:
        """Splice around a dead upstream neighbour."""
        self.upstream_ip = new_upstream

    def adopt_downstream(self, new_downstream: Optional[Ipv4Address]) -> None:
        """Splice around a dead downstream neighbour (or become tail)."""
        if new_downstream is None:
            self.secondary_failed()
        else:
            self.secondary_ip = new_downstream


class ReplicatedChain:
    """A daisy chain of K actively replicated servers.

    ``hosts[0]`` is the head (owns the client-visible service address),
    ``hosts[-1]`` the tail.  Use exactly like
    :class:`~repro.failover.replicated.ReplicatedServerPair` — run the
    same deterministic app factory on every member, crash members at
    will; surviving members keep the client's connections alive as long
    as at least one replica remains.
    """

    def __init__(
        self,
        hosts: List[Host],
        failover_ports: Iterable[int] = (),
        detector_interval: float = 0.010,
        detector_timeout: float = 0.050,
        takeover_resume_delay: float = 200e-6,
        bridge_cost: float = 15e-6,
        emit_cost: float = 25e-6,
    ):
        if len(hosts) < 2:
            raise ValueError("a chain needs at least two replicas")
        self.hosts = list(hosts)
        self.sim = hosts[0].sim
        self.service_ip = hosts[0].ip.primary_address()
        self.takeover_resume_delay = takeover_resume_delay
        self.config = FailoverConfig(failover_ports)
        self.alive = {host.name: True for host in hosts}
        self.bridges: Dict[str, ChainBridge] = {}
        self.detectors: List[FaultDetector] = []
        self._apps: List[object] = []
        self._app_factory: Optional[Callable[[Host], Generator]] = None
        self._detectors_started = False
        self.detector_interval = detector_interval
        self.detector_timeout = detector_timeout
        self.bridge_cost = bridge_cost
        self.emit_cost = emit_cost

        for index, host in enumerate(self.hosts):
            upstream = self.hosts[index - 1] if index > 0 else None
            downstream = self.hosts[index + 1] if index < len(self.hosts) - 1 else None
            if index == 0:
                bridge = ChainBridge(
                    host,
                    self.config.copy(),
                    downstream_ip=downstream.ip.primary_address(),
                    upstream_ip=self.service_ip,
                    service_ip=self.service_ip,
                    bridge_cost=bridge_cost,
                    emit_cost=emit_cost,
                )
                bridge.is_head = True
            else:
                bridge = ChainBridge(
                    host,
                    self.config.copy(),
                    downstream_ip=(
                        downstream.ip.primary_address() if downstream else None
                    ),
                    upstream_ip=upstream.ip.primary_address(),
                    service_ip=self.service_ip,
                    bridge_cost=bridge_cost,
                    emit_cost=emit_cost,
                )
            bridge.install()
            self.bridges[host.name] = bridge

        # Full-mesh failure detection keeps the splice logic simple: every
        # member watches every other and reacts only to its own neighbours.
        for host in self.hosts:
            for peer in self.hosts:
                if peer is host:
                    continue
                detector = FaultDetector(
                    host,
                    peer.ip.primary_address(),
                    on_failure=self._make_failure_handler(host, peer),
                    interval=detector_interval,
                    timeout=detector_timeout,
                )
                self.detectors.append(detector)

    # ------------------------------------------------------------------

    def start_detectors(self) -> None:
        self._detectors_started = True
        for detector in self.detectors:
            detector.start()

    def run_app(self, factory: Callable[[Host], Generator], name: str = "app") -> None:
        self._app_factory = factory
        for host in self.hosts:
            self._apps.append(host.spawn(factory(host), f"{name}@{host.name}"))

    def crash(self, host: Host) -> None:
        host.crash()

    # ------------------------------------------------------------------
    # failure handling: each survivor splices its own links
    # ------------------------------------------------------------------

    def _make_failure_handler(
        self, observer: Host, failed: Host
    ) -> Callable[[], None]:
        def handler() -> None:
            self._on_failure(observer, failed)

        return handler

    def _living_chain(self) -> List[Host]:
        return [h for h in self.hosts if self.alive.get(h.name, False)]

    def _on_failure(self, observer: Host, failed: Host) -> None:
        if not self.alive.get(failed.name, False):
            pass  # another detector on this host already reacted
        self.alive[failed.name] = False
        if not observer.alive:
            return
        chain = self._living_chain()
        if observer not in chain or not chain:
            return
        position = chain.index(observer)
        bridge: ChainBridge = self.bridges[observer.name]
        # Recompute this observer's neighbours in the spliced chain.
        new_upstream = chain[position - 1] if position > 0 else None
        new_downstream = chain[position + 1] if position < len(chain) - 1 else None
        if new_upstream is None and not bridge.is_head:
            self._promote_to_head(observer, bridge)
        elif new_upstream is not None and not bridge.is_head:
            bridge.retarget_upstream(new_upstream.ip.primary_address())
        if failed.ip.primary_address() == bridge.secondary_ip:
            # Our downstream merge partner died: splice to the next one,
            # or run the §6 procedure if none is left.
            bridge.adopt_downstream(
                new_downstream.ip.primary_address() if new_downstream else None
            )

    # ------------------------------------------------------------------
    # splice-in: restore the chain to K replicas after losses
    # ------------------------------------------------------------------

    def splice_in(
        self,
        host: Host,
        install_delay: float = 200e-6,
        resume_app: Optional[ResumeApp] = None,
        warm_sync: Optional[Callable[[Host, Host], None]] = None,
    ) -> ChainBridge:
        """Append ``host`` as the new tail, resuming established connections.

        The old tail (which has run tail-style direct mode, i.e. its own
        numbering *is* the client's) flips to a merging intermediate; the
        joiner becomes the new tail.  Because the tail's numbering is
        client-space, every resumed Δseq is the identity and nothing
        upstream needs adjusting — the same property that makes
        intermediate splice-*out* free makes splice-*in* at the tail free.

        ``resume_app`` (see :mod:`~repro.failover.reintegration`) warm-
        starts the replicated application on the joiner per connection.
        Returns the new tail's bridge.
        """
        chain = self._living_chain()
        if not chain:
            raise RuntimeError("no living replica to splice onto")
        if not host.alive:
            raise RuntimeError(f"joiner {host.name} is not alive")
        old_tail = chain[-1]
        old_bridge: ChainBridge = self.bridges[old_tail.name]
        new_ip = host.ip.primary_address()
        tracer = old_tail.tracer
        sim = self.sim
        tracer.emit(sim.now, "reintegration.start", old_tail.name,
                    joiner=host.name, case="splice")

        # Quiesce + snapshot atomically: from this event on, the old
        # tail's fresh output parks in its P queue until matched.
        snapshots, resumes, bypass = export_resumable_connections(
            old_tail, old_bridge.config, old_bridge
        )
        old_bridge.bypass_keys.update(bypass)
        old_bridge.is_tail = False
        old_bridge.resume_merge(new_ip, resumes)
        tracer.emit(sim.now, "reintegration.snapshot", old_tail.name,
                    conns=len(snapshots), bypassed=len(bypass))

        new_bridge = ChainBridge(
            host,
            self.config.copy(),
            downstream_ip=None,
            upstream_ip=old_tail.ip.primary_address(),
            service_ip=self.service_ip,
            bridge_cost=self.bridge_cost,
            emit_cost=self.emit_cost,
        )

        def do_install() -> None:
            if not host.alive or not old_tail.alive:
                tracer.emit(sim.now, "reintegration.aborted", old_tail.name,
                            joiner=host.name)
                return
            conns = [
                host.tcp.install_connection(snap, local_ip=new_ip)
                for snap in snapshots
            ]
            new_bridge.install()
            # The new tail's own bridge state: identity Δseq (its TCBs
            # were installed in client numbering, whatever Δseq the old
            # tail carried), direct mode from the start.
            tail_resumes = [
                dataclasses.replace(
                    resume, local_ip=new_ip, delta=SeqOffset.identity()
                )
                for resume in resumes
            ]
            new_bridge.resume_merge(new_ip, tail_resumes, direct=True)
            host.eth_interface.arp.announce(new_ip)
            tracer.emit(sim.now, "reintegration.installed", host.name,
                        conns=len(conns), survivor=old_tail.name)
            if warm_sync is not None:
                warm_sync(old_tail, host)
            if resume_app is not None:
                from repro.failover.reintegration import AppResume
                from repro.tcp.socket_api import SimSocket

                for conn, snap in zip(conns, snapshots):
                    host.spawn(
                        resume_app(
                            host,
                            SimSocket(conn),
                            AppResume(
                                written=snap.stream_written,
                                read=snap.stream_read,
                                snapshot=snap,
                            ),
                        ),
                        f"resume@{host.name}:{conn.local_port}",
                    )
            # Extend the full detector mesh to cover the joiner.
            fresh: List[FaultDetector] = []
            for peer in self._living_chain():
                if peer is host:
                    continue
                fresh.append(FaultDetector(
                    host,
                    peer.ip.primary_address(),
                    on_failure=self._make_failure_handler(host, peer),
                    interval=self.detector_interval,
                    timeout=self.detector_timeout,
                ))
                fresh.append(FaultDetector(
                    peer,
                    new_ip,
                    on_failure=self._make_failure_handler(peer, host),
                    interval=self.detector_interval,
                    timeout=self.detector_timeout,
                ))
            self.detectors.extend(fresh)
            if self._detectors_started:
                for detector in fresh:
                    detector.start()
            # Restart the replicated app so new connections replicate on
            # the joiner too (its processes died with the crash).
            if self._app_factory is not None:
                self._apps.append(
                    host.spawn(self._app_factory(host), f"app@{host.name}")
                )
            tracer.emit(sim.now, "reintegration.armed", old_tail.name,
                        joiner=host.name)

        # A restarted member rejoins at the *tail* position regardless of
        # where it originally sat in the chain.
        if host in self.hosts:
            self.hosts.remove(host)
        self.hosts.append(host)
        self.alive[host.name] = True
        self.bridges[host.name] = new_bridge
        sim.schedule(install_delay, do_install)
        return new_bridge

    def _promote_to_head(self, host: Host, bridge: ChainBridge) -> None:
        """§5 takeover, chain edition."""
        old_ip = host.ip.primary_address()
        bridge.become_head()
        interface = host.eth_interface
        interface.add_address(self.service_ip)
        rebind_failover_connections(host, bridge.config, old_ip, self.service_ip)
        # Bridge-connection state is keyed by peer; the local identity the
        # emissions use must follow the takeover.
        for bc in bridge.connections.values():
            bc.local_ip = self.service_ip
        interface.arp.announce(self.service_ip)
        host.tracer.emit(host.sim.now, "chain.promoted", host.name,
                         ip=str(self.service_ip))
