"""Common bridge machinery.

A bridge interposes between the host's TCP and IP layers through two hooks
(see :mod:`repro.net.host` and :mod:`repro.net.ip`):

* ``segment_from_tcp(segment, src_ip, dst_ip) -> bool`` — called for every
  outgoing TCP segment; returning True means the bridge consumed it;
* ``datagram_from_ip(datagram) -> Optional[Ipv4Datagram]`` — called for
  every received datagram before local delivery; returning None consumes
  it, returning a (possibly rewritten) datagram continues normal delivery.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.net.addresses import Ipv4Address
from repro.net.packet import IPPROTO_TCP, Ipv4Datagram
from repro.obs.metrics import NULL_METRICS
from repro.obs.spans import NULL_SPANS
from repro.tcp.segment import TcpSegment

if TYPE_CHECKING:  # net.host imports tcp; keep the bridge layer cycle-free
    from repro.failover.options import FailoverConfig
    from repro.net.host import Host
    from repro.sim.trace import Tracer


class BridgeBase:
    """Shared plumbing for the primary and secondary bridges."""

    def __init__(
        self,
        host: "Host",
        config: "FailoverConfig",
        tracer: Optional["Tracer"] = None,
        bridge_cost: float = 15e-6,
    ):
        self.host = host
        self.sim = host.sim
        self.config = config
        self.tracer = tracer or host.tracer
        self.metrics = getattr(host, "metrics", None) or NULL_METRICS
        self.spans = getattr(host, "spans", None) or NULL_SPANS
        self.bridge_cost = bridge_cost

    # -- hooks to override ---------------------------------------------------

    def segment_from_tcp(
        self, segment: TcpSegment, src_ip: Ipv4Address, dst_ip: Ipv4Address
    ) -> bool:
        raise NotImplementedError

    def datagram_from_ip(self, datagram: Ipv4Datagram) -> Optional[Ipv4Datagram]:
        raise NotImplementedError

    # -- helpers -------------------------------------------------------------

    def _connection_flag(
        self, local_ip: Ipv4Address, local_port: int, remote_ip: Ipv4Address, remote_port: int
    ) -> bool:
        """Did the application mark this connection via the socket option?"""
        conn = self.host.tcp.connections.get(
            (local_ip, local_port, remote_ip, remote_port)
        )
        return bool(conn is not None and conn.failover)

    def _listener_flag(self, local_port: int) -> bool:
        """§7 method 1 for passive sockets: a failover-marked listener
        designates every connection on its port."""
        listener = self.host.tcp.listeners.get(local_port)
        return bool(listener is not None and listener.failover)

    def _covers(self, local_port: int, conn_flag: bool) -> bool:
        return self.config.covers(local_port, conn_flag) or self._listener_flag(
            local_port
        )

    def _is_failover_outgoing(
        self, segment: TcpSegment, src_ip: Ipv4Address, dst_ip: Ipv4Address
    ) -> bool:
        flag = self._connection_flag(src_ip, segment.src_port, dst_ip, segment.dst_port)
        return self._covers(segment.src_port, flag)

    def _send_datagram(self, segment: TcpSegment, src_ip: Ipv4Address, dst_ip: Ipv4Address) -> None:
        """Emit a sealed segment directly at the IP layer (below the bridge)."""
        self.host.ip.send(
            Ipv4Datagram(src=src_ip, dst=dst_ip, protocol=IPPROTO_TCP, payload=segment)
        )

    def _trace(self, category: str, **detail: Any) -> None:
        self.tracer.emit(self.sim.now, category, self.host.name, **detail)
