"""The primary server bridge (§3.2–§3.4, §4, §6, §7, §8).

All client-visible traffic of a failover connection is synthesised here:

* the primary's own TCP output is *never* sent directly — its payload is
  mapped into S-space (Δseq) and parked in the **primary output queue**;
* the secondary's diverted segments land in the **secondary output
  queue**; the byte-for-byte common prefix of the two queues is emitted to
  the client with ACK = min(ack_P, ack_S) and window = min(win_P, win_S);
* retransmissions (payload below the high-water mark already sent to the
  client) are recognised and forwarded immediately without queueing (§4);
* empty segments are synthesised when the merged ACK advances with no
  payload to carry it (§3.4);
* connection establishment merges the two SYNs (min MSS, min window) and
  records Δseq (§7); termination merges the two FINs and §8's late-FIN
  rules synthesise ACKs after the state is deleted;
* on secondary failure the §6 procedure flushes the primary queue and
  drops into *direct* mode: segments pass with only the Δseq adjustment,
  forever.

State is keyed by (peer address, peer port, local port): the peer is the
unreplicated endpoint — the client for client-initiated connections, the
back-end server ``T`` for server-initiated ones (§7.2).  Both replicas
allocate identical local ports (deterministic ephemeral allocation), so
the key is stable across the three traffic sources.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Set, Tuple

from repro.failover.bridge import BridgeBase
from repro.failover.delta import SeqOffset
from repro.failover.merge import AckWindowMerge
from repro.failover.queues import OutputQueue, PayloadMismatch, match_prefix
from repro.net.addresses import Ipv4Address
from repro.net.packet import IPPROTO_TCP, Ipv4Datagram
from repro.obs.spans import FlowKey, flow_key as span_flow_key
from repro.tcp.segment import (
    FLAG_ACK,
    FLAG_FIN,
    FLAG_PSH,
    FLAG_SYN,
    TcpSegment,
    incremental_rewrite,
)
from repro.tcp.seqnum import seq_add, seq_gt, seq_lt, seq_max, seq_sub

if TYPE_CHECKING:
    from repro.failover.options import FailoverConfig
    from repro.net.host import Host
    from repro.sim.trace import Tracer

BridgeKey = Tuple[Ipv4Address, int, int]  # (peer ip, peer port, local port)


def _is_pure_dup_ack(segment: TcpSegment, last_ack: Optional[int]) -> bool:
    """A payload-less, flag-less ACK repeating the replica's last level."""
    return (
        not segment.payload
        and not segment.syn
        and not segment.fin
        and segment.has_ack
        and last_ack is not None
        and segment.ack == last_ack
    )


@dataclass
class BridgeConnection:
    """Per-connection bridge state on the primary (one per 4-tuple)."""

    peer_ip: Ipv4Address
    peer_port: int
    local_ip: Ipv4Address
    local_port: int
    role: str  # 'server' (client-initiated) or 'client' (server-initiated)
    syn_p: Optional[TcpSegment] = None
    syn_s: Optional[TcpSegment] = None
    syn_emitted: bool = False
    delta: Optional[SeqOffset] = None
    mss: int = 1460
    p_queue: Optional[OutputQueue] = None
    s_queue: Optional[OutputQueue] = None
    merge: AckWindowMerge = field(default_factory=AckWindowMerge)
    sent_hwm: Optional[int] = None  # S-space seq never yet sent to the peer
    fin_p: Optional[int] = None  # S-space seq of each replica's FIN
    fin_s: Optional[int] = None
    fin_sent: bool = False
    peer_fin_end: Optional[int] = None  # peer-space seq_end of the peer's FIN
    our_fin_acked: bool = False
    direct: bool = False  # §6 mode after secondary failure
    broken: bool = False  # replica divergence detected
    # Duplicate-ACK forwarding: pure ACKs repeating each replica's level
    # since the last peer-facing emission.  A TCP only repeats a pure ACK
    # when provoked by a segment arrival, so min(dup_p, dup_s) > 0 means
    # the peer is retransmitting (it missed our ACK) or probing — the
    # merged dup-ACK must go out even though the merged ACK did not move.
    dup_p: int = 0
    dup_s: int = 0
    # Resume-merge watch: which replicas' output has reached the bridge
    # since resume_merge() re-seeded this connection.  The merge counts
    # as restored once both flow again — matched payload is not required
    # (a pure-upload server emits nothing but ACKs).
    resume_seen_p: bool = False
    resume_seen_s: bool = False

    @property
    def key(self) -> BridgeKey:
        return (self.peer_ip, self.peer_port, self.local_port)

    def ready_to_delete(self) -> bool:
        """§8: both directions closed and both FINs acknowledged."""
        if not (self.fin_sent and self.our_fin_acked):
            return False
        if self.peer_fin_end is None:
            return False
        merged = self.merge.merged_ack()
        return merged is not None and seq_gt(merged, seq_sub(self.peer_fin_end, 1))


@dataclass
class ConnectionResume:
    """Everything :meth:`PrimaryBridge.resume_merge` needs to re-seed one
    connection's bridge state when a replica reintegrates.

    ``frontier`` is the next peer-visible sequence number that has *not*
    yet been sent to the peer (the survivor's ``snd_max`` mapped into the
    peer's numbering): both output queues restart there, and it becomes
    the emission high-water mark so in-flight retransmissions keep using
    the §4 fast path.  ``ack``/``window`` seed the ACK/window merge with
    the state both replicas share at the snapshot instant.
    """

    peer_ip: Ipv4Address
    peer_port: int
    local_ip: Ipv4Address
    local_port: int
    delta: SeqOffset
    frontier: int
    ack: Optional[int]
    window: int
    mss: int = 1460
    role: str = "server"
    peer_fin_end: Optional[int] = None

    @property
    def key(self) -> BridgeKey:
        return (self.peer_ip, self.peer_port, self.local_port)


class PrimaryBridge(BridgeBase):
    """Merging bridge on the primary server."""

    def __init__(
        self,
        host: "Host",
        config: "FailoverConfig",
        secondary_ip: Ipv4Address,
        tracer: Optional["Tracer"] = None,
        bridge_cost: float = 15e-6,
        emit_cost: float = 25e-6,
        ack_merging: bool = True,
        window_merging: bool = True,
    ):
        super().__init__(host, config, tracer=tracer, bridge_cost=bridge_cost)
        self.emit_cost = emit_cost
        self.secondary_ip = secondary_ip
        # Ablation knobs (benchmarks only); True reproduces the paper.
        self.ack_merging = ack_merging
        self.window_merging = window_merging
        self.secondary_down = False
        self.connections: Dict[BridgeKey, BridgeConnection] = {}
        # Reintegration: connections that could not be resumed (already
        # closing when the replica rejoined) keep talking to the peer
        # without bridge interference, and keys whose first post-resume
        # merged emission is still outstanding are watched so the
        # coordinator can mark the merge phase complete.
        self.bypass_keys: Set[BridgeKey] = set()
        self._resume_watch: Set[BridgeKey] = set()
        self.on_resume_merged = None  # callable(BridgeKey) or None
        # Statistics (asserted on by tests, reported by benchmarks).
        self.segments_merged = 0
        self.empty_acks_sent = 0
        self.retransmissions_forwarded = 0
        self.late_acks_synthesized = 0
        self.mismatches = 0
        self.rsts_ignored = 0
        # Metrics-plane mirrors of the above, plus queue-depth histograms
        # (labelled instruments; free when the registry is disabled).
        host_label = host.name
        self._m_merged = self.metrics.counter("bridge.segments_merged", host=host_label)
        self._m_bytes_matched = self.metrics.counter("bridge.bytes_matched", host=host_label)
        self._m_empty_acks = self.metrics.counter("bridge.empty_acks", host=host_label)
        self._m_rtx_fwd = self.metrics.counter(
            "bridge.retransmissions_forwarded", host=host_label
        )
        self._m_late_acks = self.metrics.counter(
            "bridge.late_acks_synthesized", host=host_label
        )
        self._m_rsts_ignored = self.metrics.counter(
            "bridge.rsts_ignored", host=host_label
        )
        self._m_mismatches = self.metrics.counter("bridge.mismatches", host=host_label)
        self._m_depth_p = self.metrics.histogram(
            "bridge.queue_depth", host=host_label, queue="P"
        )
        self._m_depth_s = self.metrics.histogram(
            "bridge.queue_depth", host=host_label, queue="S"
        )

    def install(self) -> None:
        self.host.install_bridge(self)

    # ==================================================================
    # outgoing: segments from the primary's own TCP layer  (§3.2)
    # ==================================================================

    def segment_from_tcp(
        self, segment: TcpSegment, src_ip: Ipv4Address, dst_ip: Ipv4Address
    ) -> bool:
        if dst_ip == self.secondary_ip:
            return False
        if not self._is_failover_outgoing(segment, src_ip, dst_ip):
            return False
        key = (dst_ip, segment.dst_port, segment.src_port)
        if key in self.bypass_keys:
            return False  # un-resumed connection: unbridged, like any other
        bc = self.connections.get(key)
        if bc is None:
            if segment.rst:
                return False  # RST for an unknown connection: pass through
            if not segment.syn:
                # Late retransmission after §8 state deletion; the peer
                # already acknowledged everything, so drop it.
                self._trace("bridge.p.late_local_drop", seq=segment.seq)
                return True
            bc = self._create_connection(
                key, src_ip, role="server" if segment.has_ack else "client"
            )
        self.host.cpu.run(self.bridge_cost, self._from_primary_tcp, bc, segment)
        return True

    def _create_connection(
        self, key: BridgeKey, local_ip: Ipv4Address, role: str
    ) -> BridgeConnection:
        bc = BridgeConnection(
            peer_ip=key[0],
            peer_port=key[1],
            local_ip=local_ip,
            local_port=key[2],
            role=role,
        )
        bc.merge = AckWindowMerge(
            use_min_ack=self.ack_merging, use_min_window=self.window_merging
        )
        if self.secondary_down:
            # Born after the secondary failed: direct mode from the start,
            # with P's own numbering (Δseq = 0).
            bc.direct = True
            bc.delta = SeqOffset.identity()
        self.connections[key] = bc
        self._trace("bridge.p.conn_created", peer=f"{key[0]}:{key[1]}",
                    local_port=key[2], role=role)
        if self.spans.enabled:
            peer_key = self._span_key(bc)
            # The secondary's diverted copies ride a rewritten 4-tuple
            # (a_s:local → a_p:peer); alias it so the divert leg's TCP and
            # Ethernet spans land in the same trace as the client leg.
            self.spans.alias_flow(
                span_flow_key(
                    self.secondary_ip, bc.local_port, bc.local_ip, bc.peer_port
                ),
                peer_key,
            )
            self.spans.flow_event(
                peer_key, "bridge.conn_created", self.sim.now, self.host.name,
                role=role,
            )
        return bc

    def _span_key(self, bc: BridgeConnection) -> FlowKey:
        """The peer-facing flow key this connection's spans attach to."""
        return span_flow_key(
            bc.peer_ip, bc.peer_port, bc.local_ip, bc.local_port
        )

    def _from_primary_tcp(self, bc: BridgeConnection, segment: TcpSegment) -> None:
        if bc.broken:
            return
        if segment.rst:
            self._emit_rst(bc, segment, from_primary=True)
            return
        if segment.syn:
            bc.syn_p = segment
            if bc.direct:
                if bc.syn_emitted:
                    self._direct_passthrough(bc, segment)
                else:
                    self._direct_emit_syn(bc)
            elif bc.syn_emitted:
                self._reemit_syn(bc)  # primary's SYN retransmission
            elif bc.syn_s is not None:
                self._complete_handshake(bc)
            return
        if bc.direct:
            self._direct_passthrough(bc, segment)
            return
        if bc.delta is None:
            # Data-bearing segment before the merged SYN: cannot map yet.
            self._trace("bridge.p.early_drop", seq=segment.seq)
            return
        s_seq = bc.delta.p_to_s(segment.seq)
        if _is_pure_dup_ack(segment, bc.merge.ack_p):
            bc.dup_p += 1
        bc.merge.update_from_primary(
            segment.ack if segment.has_ack else None, segment.window
        )
        fin_seq = seq_add(s_seq, len(segment.payload)) if segment.fin else None
        self._ingest(bc, "P", s_seq, segment.payload, fin_seq)

    # ==================================================================
    # incoming datagrams  (§3.2 demultiplexer)
    # ==================================================================

    def datagram_from_ip(self, datagram: Ipv4Datagram) -> Optional[Ipv4Datagram]:
        if datagram.protocol != IPPROTO_TCP:
            return datagram
        if not self.host.ip.owns(datagram.dst):
            return datagram
        segment = datagram.payload
        if segment.orig_dst_option is not None:
            return self._from_secondary_datagram(datagram, segment)
        return self._from_peer_datagram(datagram, segment)

    # ---- segments diverted from the secondary ------------------------

    def _from_secondary_datagram(
        self, datagram: Ipv4Datagram, segment: TcpSegment
    ) -> None:
        peer = segment.orig_dst_option
        key = (peer, segment.dst_port, segment.src_port)
        bc = self.connections.get(key)
        if bc is None:
            if segment.syn:
                bc = self._create_connection(
                    key,
                    self._local_ip_guess(),
                    role="server" if segment.has_ack else "client",
                )
            elif segment.rst:
                return None  # primary's own TCP will have RST'd already
            else:
                # §8: a FIN (or trailing segment) retransmitted by S after
                # we deleted the connection state: acknowledge it to S.
                self._synthesize_ack_to_secondary(datagram, segment)
                return None
        if self.secondary_down:
            return None  # stale segment already in flight when S died
        # The diverted segment never reaches our TCP layer, so charge its
        # receive cost here along with the bridge's own processing cost.
        cost = (
            self.host.rx_segment_cost
            + self.host.rx_byte_cost * len(segment.payload)
            + self.bridge_cost
        )
        self.host.cpu.run(cost, self._from_secondary_tcp, bc, segment)
        return None

    def _from_secondary_tcp(self, bc: BridgeConnection, segment: TcpSegment) -> None:
        if bc.broken or bc.direct:
            return
        if segment.rst:
            self._trace("bridge.p.s_rst_dropped", peer=str(bc.peer_ip))
            return
        if segment.syn:
            bc.syn_s = segment
            if bc.syn_emitted:
                self._reemit_syn(bc)  # secondary's SYN retransmission
            elif bc.syn_p is not None:
                self._complete_handshake(bc)
            return
        if bc.delta is None:
            self._trace("bridge.p.early_drop_s", seq=segment.seq)
            return
        if _is_pure_dup_ack(segment, bc.merge.ack_s):
            bc.dup_s += 1
        bc.merge.update_from_secondary(
            segment.ack if segment.has_ack else None, segment.window
        )
        fin_seq = seq_add(segment.seq, len(segment.payload)) if segment.fin else None
        self._ingest(bc, "S", segment.seq, segment.payload, fin_seq)

    # ---- segments from the unreplicated peer (client or back-end T) ---

    def _from_peer_datagram(
        self, datagram: Ipv4Datagram, segment: TcpSegment
    ) -> Optional[Ipv4Datagram]:
        flag = self._connection_flag(
            datagram.dst, segment.dst_port, datagram.src, segment.src_port
        )
        if not self._covers(segment.dst_port, flag):
            return datagram  # ordinary traffic
        key = (datagram.src, segment.src_port, segment.dst_port)
        if key in self.bypass_keys:
            return datagram  # un-resumed connection: deliver untouched
        bc = self.connections.get(key)
        if bc is None:
            if segment.syn and not segment.has_ack:
                self._create_connection(key, datagram.dst, role="server")
                return datagram  # the SYN itself goes up unmodified
            if segment.rst:
                return datagram
            # §8: peer retransmission after state deletion → synthesise ACK.
            if segment.fin or segment.payload:
                self._synthesize_ack_to_peer(datagram, segment)
                return None
            return None
        if segment.rst:
            # Blind-reset hardening: the bridge used to drop connection
            # state on *any* peer RST, after which client retransmissions
            # hit the §8 synthesize-ACK path and were silently black-holed
            # — an off-path attacker's in-window forgery killed the bridge
            # even though the TCP stack survived.  Mirror RFC 5961: only
            # an exact-match, checksum-valid RST deletes bridge state; the
            # segment always goes up so the stack can challenge-ACK.
            if self._peer_rst_valid(datagram, segment):
                self._delete(bc, reason="peer_rst")
            else:
                self.rsts_ignored += 1
                self._m_rsts_ignored.inc()
                self._trace(
                    "bridge.p.rst_ignored",
                    peer=f"{datagram.src}:{segment.src_port}",
                    seq=segment.seq,
                )
            return datagram
        if segment.fin:
            bc.peer_fin_end = segment.seq_end
        if not segment.has_ack:
            return datagram
        if bc.delta is None:
            # ACK in S-space before we computed Δseq: cannot translate.
            self._trace("bridge.p.ack_before_delta", seq=segment.seq)
            return None
        if (
            bc.fin_sent
            and bc.fin_p is not None
            and seq_gt(segment.ack, bc.fin_p)
        ):
            bc.our_fin_acked = True
        rewritten = incremental_rewrite(
            segment,
            old_src=datagram.src,
            old_dst=datagram.dst,
            ack=bc.delta.s_to_p(segment.ack),
        )
        if bc.ready_to_delete():
            self._delete(bc, reason="closed")
        return replace(datagram, payload=rewritten)

    def _peer_rst_valid(
        self, datagram: Ipv4Datagram, segment: TcpSegment
    ) -> bool:
        """Exact-match validation before honouring a peer RST."""
        if not segment.checksum_ok(datagram.src, datagram.dst):
            return False
        conn = self.host.tcp.connections.get(
            (datagram.dst, segment.dst_port, datagram.src, segment.src_port)
        )
        if conn is None:
            # No live TCB to validate against (already torn down locally):
            # bridge state is stale either way, let the RST clear it.
            return True
        return segment.seq == conn.rcv_nxt

    # ==================================================================
    # the §3.4 engine: queues, matching, retransmissions, empty ACKs
    # ==================================================================

    def _ingest(
        self,
        bc: BridgeConnection,
        source: str,
        s_seq: int,
        payload: bytes,
        fin_seq: Optional[int],
    ) -> None:
        emitted = False
        if payload:
            # §4: payload at or below the high-water mark was already sent
            # to the client — this is a retransmission; forward immediately.
            already = 0
            if seq_lt(s_seq, bc.sent_hwm):
                already = min(seq_sub(bc.sent_hwm, s_seq), len(payload))
                self._emit_data(bc, s_seq, payload[:already], retransmission=True)
                self.retransmissions_forwarded += 1
                self._m_rtx_fwd.inc()
                emitted = True
            if already < len(payload):
                fresh_seq = seq_add(s_seq, already)
                queue = bc.p_queue if source == "P" else bc.s_queue
                try:
                    queue.enqueue(fresh_seq, payload[already:])
                except PayloadMismatch as exc:
                    self._mark_broken(bc, exc)
                    return
                emitted = self._match_and_emit(bc) or emitted
        if fin_seq is not None:
            if source == "P":
                bc.fin_p = fin_seq
            else:
                bc.fin_s = fin_seq
            if bc.fin_sent and seq_lt(fin_seq, bc.sent_hwm):
                self._emit_fin(bc)  # retransmitted FIN → forward again
                self.retransmissions_forwarded += 1
                self._m_rtx_fwd.inc()
                emitted = True
        if self._emit_fin_if_ready(bc):
            emitted = True
        if not emitted:
            self._maybe_empty_ack(bc)
        if bc.p_queue is not None:
            self._m_depth_p.observe(len(bc.p_queue))
        if bc.s_queue is not None:
            self._m_depth_s.observe(len(bc.s_queue))
        if self._resume_watch and bc.key in self._resume_watch:
            if source == "P":
                bc.resume_seen_p = True
            else:
                bc.resume_seen_s = True
            if bc.resume_seen_p and bc.resume_seen_s:
                self._note_resume_merged(bc)
        if bc.ready_to_delete():
            self._delete(bc, reason="closed")

    def _match_and_emit(self, bc: BridgeConnection) -> bool:
        emitted = False
        while True:
            try:
                match = match_prefix(bc.p_queue, bc.s_queue)
            except PayloadMismatch as exc:
                self._mark_broken(bc, exc)
                return emitted
            if match is None:
                return emitted
            seq, data = match
            offset = 0
            while offset < len(data):
                chunk = data[offset : offset + bc.mss]
                self._emit_data(bc, seq_add(seq, offset), chunk)
                offset += len(chunk)
            self.segments_merged += 1
            self._m_merged.inc()
            self._m_bytes_matched.inc(len(data))
            if self.spans.enabled:
                self.spans.flow_event(
                    self._span_key(bc), "bridge.matched",
                    self.sim.now, self.host.name,
                    seq=seq, size=len(data),
                    depth_p=len(bc.p_queue) if bc.p_queue is not None else 0,
                    depth_s=len(bc.s_queue) if bc.s_queue is not None else 0,
                )
            emitted = True

    def _emit_data(
        self, bc: BridgeConnection, seq: int, payload: bytes, retransmission: bool = False
    ) -> None:
        ack = bc.merge.merged_ack()
        flags = FLAG_PSH | (FLAG_ACK if ack is not None else 0)
        segment = TcpSegment(
            src_port=bc.local_port,
            dst_port=bc.peer_port,
            seq=seq,
            ack=ack if ack is not None else 0,
            flags=flags,
            window=bc.merge.merged_window(),
            payload=payload,
        )
        self._emit(bc, segment)
        bc.merge.note_sent(ack)
        bc.sent_hwm = seq_max(bc.sent_hwm, segment.seq_end)
        self._trace(
            "bridge.p.emit_data",
            seq=seq,
            len=len(payload),
            rtx=retransmission,
            ack=segment.ack,
        )
        if not retransmission and self._resume_watch:
            self._note_resume_merged(bc)

    def _emit_fin_if_ready(self, bc: BridgeConnection) -> bool:
        """Emit the merged FIN once both replicas have closed and all
        payload before the FIN has been sent."""
        if bc.fin_sent or bc.fin_p is None or bc.fin_s is None:
            return False
        if bc.fin_p != bc.fin_s:
            self._mark_broken(
                bc, PayloadMismatch(f"FIN positions differ: {bc.fin_p} vs {bc.fin_s}")
            )
            return False
        if len(bc.p_queue) or len(bc.s_queue):
            return False
        if bc.sent_hwm != bc.fin_p:
            return False  # unmatched payload still outstanding
        self._emit_fin(bc)
        bc.fin_sent = True
        bc.sent_hwm = seq_add(bc.fin_p, 1)
        return True

    def _emit_fin(self, bc: BridgeConnection) -> None:
        ack = bc.merge.merged_ack()
        segment = TcpSegment(
            src_port=bc.local_port,
            dst_port=bc.peer_port,
            seq=bc.fin_p if bc.fin_p is not None else bc.sent_hwm,
            ack=ack if ack is not None else 0,
            flags=FLAG_FIN | (FLAG_ACK if ack is not None else 0),
            window=bc.merge.merged_window(),
        )
        self._emit(bc, segment)
        bc.merge.note_sent(ack)
        self._trace("bridge.p.emit_fin", seq=segment.seq)

    def _maybe_empty_ack(self, bc: BridgeConnection) -> None:
        if bc.sent_hwm is None:
            return
        if bc.merge.should_send_empty_ack():
            self._send_empty_ack(bc)
            return
        # The merged ACK did not advance, but if *both* replicas repeated
        # their pure ACK since our last emission the peer is provably
        # resending (lost ACK, lost segment awaiting fast retransmit, or
        # a zero-window probe) and must hear the duplicate.
        if min(bc.dup_p, bc.dup_s) > 0 and bc.merge.merged_ack() is not None:
            self._send_empty_ack(bc, duplicate=True)

    def _send_empty_ack(self, bc: BridgeConnection, duplicate: bool = False) -> None:
        ack = bc.merge.merged_ack()
        segment = TcpSegment(
            src_port=bc.local_port,
            dst_port=bc.peer_port,
            seq=bc.sent_hwm,
            ack=ack,
            flags=FLAG_ACK,
            window=bc.merge.merged_window(),
        )
        self._emit(bc, segment)
        bc.merge.note_sent(ack)
        bc.merge.note_empty_ack()
        self.empty_acks_sent += 1
        self._m_empty_acks.inc()
        self._trace("bridge.p.empty_ack", ack=ack, dup=duplicate)

    def _emit(self, bc: BridgeConnection, segment: TcpSegment) -> None:
        # Constructing the outgoing segment costs CPU (mbuf surgery plus
        # the incremental checksum update); emission order is preserved
        # because the host CPU is a FIFO.
        if segment.has_ack:
            # Any ACK-bearing emission answers the replicas' outstanding
            # duplicate ACKs; the next forwarded dup needs a fresh pair.
            bc.dup_p = bc.dup_s = 0
        sealed = segment.sealed(bc.local_ip, bc.peer_ip)
        self.host.cpu.run(
            self.emit_cost, self._send_datagram, sealed, bc.local_ip, bc.peer_ip
        )

    # ==================================================================
    # connection establishment  (§7.1, §7.2)
    # ==================================================================

    def _complete_handshake(self, bc: BridgeConnection) -> None:
        """Both SYNs are in: compute Δseq and emit the merged SYN."""
        bc.delta = SeqOffset(bc.syn_p.seq, bc.syn_s.seq)
        frontier = seq_add(bc.syn_s.seq, 1)
        bc.p_queue = OutputQueue(frontier, name="P", metrics=self.metrics, host=self.host.name)
        bc.s_queue = OutputQueue(frontier, name="S", metrics=self.metrics, host=self.host.name)
        mss_p = bc.syn_p.mss_option or bc.mss
        mss_s = bc.syn_s.mss_option or bc.mss
        bc.mss = min(mss_p, mss_s)
        if bc.syn_p.has_ack:
            bc.merge.update_from_primary(bc.syn_p.ack, bc.syn_p.window)
            bc.merge.update_from_secondary(bc.syn_s.ack, bc.syn_s.window)
        else:
            bc.merge.update_from_primary(None, bc.syn_p.window)
            bc.merge.update_from_secondary(None, bc.syn_s.window)
        bc.sent_hwm = frontier
        bc.syn_emitted = True
        self._reemit_syn(bc)
        self._trace(
            "bridge.p.syn_merged",
            delta=bc.delta.delta,
            mss=bc.mss,
            role=bc.role,
        )
        if self.spans.enabled:
            self.spans.flow_event(
                self._span_key(bc), "bridge.syn_merged",
                self.sim.now, self.host.name,
                delta=bc.delta.delta, mss=bc.mss, role=bc.role,
            )

    def _reemit_syn(self, bc: BridgeConnection) -> None:
        """(Re)send the merged SYN / SYN-ACK with min-MSS and min-window."""
        if not bc.syn_emitted:
            return
        ack = bc.merge.merged_ack()
        flags = FLAG_SYN | (FLAG_ACK if ack is not None else 0)
        segment = TcpSegment(
            src_port=bc.local_port,
            dst_port=bc.peer_port,
            seq=bc.syn_s.seq,
            ack=ack if ack is not None else 0,
            flags=flags,
            window=bc.merge.merged_window(),
            mss_option=bc.mss,
        )
        self._emit(bc, segment)
        bc.merge.note_sent(ack)

    # ==================================================================
    # secondary failure  (§6)
    # ==================================================================

    def secondary_failed(self) -> None:
        """Run the §6 procedure on every failover connection."""
        if self.secondary_down:
            return
        self.secondary_down = True
        self._trace("bridge.p.secondary_failed")
        for bc in list(self.connections.values()):
            self._enter_direct_mode(bc)

    def _enter_direct_mode(self, bc: BridgeConnection) -> None:
        if bc.broken or bc.direct:
            return
        bc.direct = True
        if bc.delta is None:
            # The secondary died before establishment: no client-visible
            # sequence numbers exist yet, so P's numbering wins (Δseq = 0).
            bc.delta = SeqOffset.identity()
            if bc.syn_p is not None and not bc.syn_emitted:
                self._direct_emit_syn(bc)
            return
        # §6 step 1: flush everything in the primary output queue.
        seq, data = bc.p_queue.drain()
        offset = 0
        while offset < len(data):
            chunk = data[offset : offset + bc.mss]
            self._emit_direct_data(bc, seq_add(seq, offset), chunk)
            offset += len(chunk)
        if (
            bc.fin_p is not None
            and not bc.fin_sent
            and bc.sent_hwm == bc.fin_p
        ):
            self._emit_fin(bc)
            bc.fin_sent = True
            bc.sent_hwm = seq_add(bc.fin_p, 1)
        # While the secondary was dying, every emission was capped at its
        # frozen ack_s; the peer may still be waiting for bytes P long
        # since acknowledged.  Re-announce P's true cumulative ACK once,
        # or the peer retransmits into a connection P has already closed.
        if (
            bc.merge.ack_p is not None
            and bc.sent_hwm is not None
            and (
                bc.merge.last_sent_ack is None
                or seq_gt(bc.merge.ack_p, bc.merge.last_sent_ack)
            )
        ):
            catch_up = TcpSegment(
                src_port=bc.local_port,
                dst_port=bc.peer_port,
                seq=bc.sent_hwm,
                ack=bc.merge.ack_p,
                flags=FLAG_ACK,
                window=bc.merge.win_p,
            )
            self._emit(bc, catch_up)
            bc.merge.note_sent(bc.merge.ack_p)
            self._trace("bridge.p.direct_catchup_ack", ack=bc.merge.ack_p)
        self._trace("bridge.p.flushed", bytes=len(data))
        if self.spans.enabled:
            self.spans.flow_event(
                self._span_key(bc), "bridge.flushed",
                self.sim.now, self.host.name, size=len(data),
            )

    def _direct_emit_syn(self, bc: BridgeConnection) -> None:
        """Emit P's own SYN unmodified (secondary died pre-establishment)."""
        syn = bc.syn_p
        frontier = seq_add(syn.seq, 1)
        bc.p_queue = OutputQueue(frontier, name="P", metrics=self.metrics, host=self.host.name)
        bc.s_queue = OutputQueue(frontier, name="S", metrics=self.metrics, host=self.host.name)
        if syn.mss_option is not None:
            bc.mss = syn.mss_option
        bc.sent_hwm = frontier
        bc.syn_emitted = True
        self._emit(bc, syn)

    def _emit_direct_data(self, bc: BridgeConnection, seq: int, payload: bytes) -> None:
        """Flush-path emission: P's own ACK and window (§6)."""
        ack = bc.merge.ack_p
        segment = TcpSegment(
            src_port=bc.local_port,
            dst_port=bc.peer_port,
            seq=seq,
            ack=ack if ack is not None else 0,
            flags=FLAG_PSH | (FLAG_ACK if ack is not None else 0),
            window=bc.merge.win_p,
            payload=payload,
        )
        self._emit(bc, segment)
        bc.sent_hwm = seq_max(bc.sent_hwm, segment.seq_end)

    def _direct_passthrough(self, bc: BridgeConnection, segment: TcpSegment) -> None:
        """§6 step 3: only the Δseq subtraction remains, forever."""
        s_seq = bc.delta.p_to_s(segment.seq)
        bc.merge.update_from_primary(
            segment.ack if segment.has_ack else None, segment.window
        )
        adjusted = replace(segment, seq=s_seq)
        self._emit(bc, adjusted)
        bc.sent_hwm = seq_max(bc.sent_hwm, adjusted.seq_end)
        if segment.fin and bc.fin_p is None:
            bc.fin_p = seq_add(s_seq, len(segment.payload))
            bc.fin_sent = True

    # ==================================================================
    # replica reintegration
    # ==================================================================

    def resume_merge(
        self,
        secondary_ip: Ipv4Address,
        resumes: Iterable[ConnectionResume],
        direct: bool = False,
    ) -> None:
        """Re-admit a merge partner on established connections.

        Two shapes, one mechanism:

        * the survivor is a promoted secondary (post-§5): this bridge is
          freshly built, every resume carries the identity Δseq because
          the survivor's TCBs already speak the client's numbering;
        * the survivor is a primary in §6 direct mode: the existing
          bridge connections keep their original Δseq and flip back from
          direct to queue-matching merge mode.

        Both output queues restart at the resume ``frontier`` (= snapshot
        ``snd_max`` in peer numbering): nothing at or above it has been
        emitted, so no byte is ever sent unmatched, and anything below it
        is by construction a retransmission handled by the §4 fast path.
        The merge is seeded with the snapshot ACK as *sent*, so resuming
        an idle connection does not provoke a spurious empty ACK.

        With ``direct=True`` the re-seeded connections stay in direct
        (divert) mode — used by a chain's new tail, which has no merge
        partner of its own.
        """
        if not direct:
            self.secondary_ip = secondary_ip
            self.secondary_down = False
        for resume in resumes:
            bc = self.connections.get(resume.key)
            if bc is None:
                bc = BridgeConnection(
                    peer_ip=resume.peer_ip,
                    peer_port=resume.peer_port,
                    local_ip=resume.local_ip,
                    local_port=resume.local_port,
                    role=resume.role,
                )
                bc.peer_fin_end = resume.peer_fin_end
                self.connections[resume.key] = bc
            bc.delta = resume.delta
            bc.mss = resume.mss
            bc.direct = direct
            bc.broken = False
            bc.syn_emitted = True
            bc.fin_p = None
            bc.fin_s = None
            bc.fin_sent = False
            bc.our_fin_acked = False
            bc.dup_p = 0
            bc.dup_s = 0
            bc.p_queue = OutputQueue(
                resume.frontier, name="P", metrics=self.metrics, host=self.host.name
            )
            bc.s_queue = OutputQueue(
                resume.frontier, name="S", metrics=self.metrics, host=self.host.name
            )
            bc.sent_hwm = resume.frontier
            bc.merge = AckWindowMerge(
                use_min_ack=self.ack_merging, use_min_window=self.window_merging
            )
            bc.merge.update_from_primary(resume.ack, resume.window)
            bc.merge.update_from_secondary(resume.ack, resume.window)
            bc.merge.note_sent(resume.ack)
            bc.resume_seen_p = False
            bc.resume_seen_s = False
            self.bypass_keys.discard(resume.key)
            if not direct:
                self._resume_watch.add(resume.key)
            self._trace(
                "bridge.p.resume_merge",
                peer=f"{resume.peer_ip}:{resume.peer_port}",
                frontier=resume.frontier,
                delta=resume.delta.delta,
                direct=direct,
            )

    def _note_resume_merged(self, bc: BridgeConnection) -> None:
        """First fresh (matched) emission after a resume: merge restored."""
        if bc.key not in self._resume_watch:
            return
        self._resume_watch.discard(bc.key)
        self._trace("bridge.p.resume_merged", peer=f"{bc.peer_ip}:{bc.peer_port}")
        if self.on_resume_merged is not None:
            self.on_resume_merged(bc.key)

    # ==================================================================
    # §8 late-segment handling and teardown
    # ==================================================================

    def _synthesize_ack_to_secondary(
        self, datagram: Ipv4Datagram, segment: TcpSegment
    ) -> None:
        """ACK a FIN the secondary retransmitted after state deletion.

        The ACK is built to look as if the client sent it: source is the
        original client address, destination the secondary itself.
        """
        ack_seg = TcpSegment(
            src_port=segment.dst_port,
            dst_port=segment.src_port,
            seq=segment.ack,
            ack=segment.seq_end,
            flags=FLAG_ACK,
            window=0xFFFF,
        )
        peer = segment.orig_dst_option
        sealed = ack_seg.sealed(peer, self.secondary_ip)
        self.late_acks_synthesized += 1
        self._m_late_acks.inc()
        self._trace("bridge.p.late_ack_to_s", seq=segment.seq)
        self._send_datagram(sealed, peer, self.secondary_ip)

    def _synthesize_ack_to_peer(
        self, datagram: Ipv4Datagram, segment: TcpSegment
    ) -> None:
        """ACK a FIN the client retransmitted after state deletion."""
        ack_seg = TcpSegment(
            src_port=segment.dst_port,
            dst_port=segment.src_port,
            seq=segment.ack,
            ack=segment.seq_end,
            flags=FLAG_ACK,
            window=0xFFFF,
        )
        sealed = ack_seg.sealed(datagram.dst, datagram.src)
        self.late_acks_synthesized += 1
        self._m_late_acks.inc()
        self._trace("bridge.p.late_ack_to_peer", seq=segment.seq)
        self._send_datagram(sealed, datagram.dst, datagram.src)

    def _emit_rst(self, bc: BridgeConnection, segment: TcpSegment, from_primary: bool) -> None:
        """Forward an abort: adjust the sequence number if Δseq is known."""
        if bc.delta is not None:
            adjusted = replace(segment, seq=bc.delta.p_to_s(segment.seq))
        else:
            adjusted = segment
        self._emit(bc, adjusted)
        self._delete(bc, reason="rst")

    def _mark_broken(self, bc: BridgeConnection, exc: Exception) -> None:
        bc.broken = True
        self.mismatches += 1
        self._m_mismatches.inc()
        self._trace("bridge.p.mismatch", error=str(exc), peer=str(bc.peer_ip))
        if self.spans.enabled:
            self.spans.flow_event(
                self._span_key(bc), "bridge.mismatch",
                self.sim.now, self.host.name, error=str(exc),
            )

    def _delete(self, bc: BridgeConnection, reason: str) -> None:
        self.connections.pop(bc.key, None)
        self._trace("bridge.p.conn_deleted", peer=f"{bc.peer_ip}:{bc.peer_port}",
                    reason=reason)

    def _local_ip_guess(self) -> Ipv4Address:
        return self.host.ip.primary_address()
