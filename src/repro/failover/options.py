"""Designating which connections are TCP-failover connections (§7).

The paper implemented two methods and so do we:

1. a per-socket option (our ``failover=True`` on ``listen()``/``connect()``,
   mirroring their augmented socket interface), and
2. a per-port configuration: every connection whose *local* port is in the
   configured set is treated as a failover connection.  "The user must
   specify the same set of ports on the primary server host and the
   secondary server host" — :class:`ReplicatedServerPair` enforces that by
   construction.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set


class FailoverConfig:
    """Per-host failover designation state."""

    def __init__(self, ports: Optional[Iterable[int]] = None):
        self.ports: Set[int] = set(ports or ())

    def add_port(self, port: int) -> None:
        if not 0 < port < 65536:
            raise ValueError(f"bad port {port}")
        self.ports.add(port)

    def remove_port(self, port: int) -> None:
        self.ports.discard(port)

    def is_failover_port(self, port: int) -> bool:
        return port in self.ports

    def covers(self, local_port: int, conn_flag: bool = False) -> bool:
        """True if a connection with this local port is a failover one."""
        return conn_flag or local_port in self.ports

    def copy(self) -> "FailoverConfig":
        return FailoverConfig(self.ports)

    def __repr__(self) -> str:
        return f"FailoverConfig(ports={sorted(self.ports)})"
