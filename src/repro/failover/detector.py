"""Heartbeat fault detector (§2: "the system employs a fault detector").

Each server periodically sends a small heartbeat datagram (a
simulation-private IP protocol, so it shares the wire with real traffic)
to its peer and declares the peer failed after ``timeout`` seconds of
silence.  Detection latency is therefore in [timeout, timeout+interval],
and it is the first component of the paper's failover interval ``T``.

Fail-stop only: the paper assumes crash faults, and so do we.

Lifecycle
---------

The detector is re-armable, which replica reintegration depends on:

* :meth:`start` arms the send and check ticks (idempotent while armed);
* :meth:`stop` cancels both tick timers — nothing stays scheduled;
* :meth:`reset` stops and clears ``fired``/``last_heard`` so a later
  :meth:`start` begins from a clean slate instead of firing instantly
  off stale state;
* a tick that observes its own host dead disarms the detector instead
  of silently dying, so a crash never leaks a scheduled callback and a
  restarted host can ``reset()`` + ``start()`` the same object;
* :meth:`detach` additionally unregisters the heartbeat handler, for
  detectors that are being replaced rather than re-armed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.net.addresses import Ipv4Address
from repro.net.packet import IPPROTO_HEARTBEAT, HeartbeatPayload, Ipv4Datagram

if TYPE_CHECKING:
    from repro.net.host import Host
    from repro.sim.trace import Tracer


class FaultDetector:
    """Monitors one peer from one host."""

    def __init__(
        self,
        host: "Host",
        peer_ip: Ipv4Address,
        on_failure: Callable[[], None],
        interval: float = 0.010,
        timeout: float = 0.050,
        tracer: Optional["Tracer"] = None,
    ):
        if timeout <= interval:
            raise ValueError("timeout must exceed the heartbeat interval")
        self.host = host
        self.sim = host.sim
        self.peer_ip = peer_ip
        self.on_failure = on_failure
        self.interval = interval
        self.timeout = timeout
        self.tracer = tracer or host.tracer
        self.last_heard: Optional[float] = None
        self.fired = False
        self.started = False
        self._send_timer = None
        self._check_timer = None
        self._sequence = 0
        self.heartbeats_sent = 0
        self.heartbeats_received = 0
        metrics = getattr(host, "metrics", None)
        if metrics is None:
            from repro.obs.metrics import NULL_METRICS

            metrics = NULL_METRICS
        self._m_sent = metrics.counter("detector.heartbeats_sent", host=host.name)
        self._m_received = metrics.counter("detector.heartbeats_received", host=host.name)
        self._m_fired = metrics.counter("detector.failures", host=host.name)
        host.add_heartbeat_handler(self._heartbeat_received)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Arm the detector.  Idempotent while armed; re-arms after a
        :meth:`stop`.  A detector that has ``fired`` must be :meth:`reset`
        first, or the check tick will do nothing."""
        if self.started:
            return
        self.started = True
        self.last_heard = self.sim.now
        self._send_tick()
        self._check_tick()

    def stop(self) -> None:
        """Disarm: cancel both tick timers.  Idempotent; counters and the
        ``fired`` flag are preserved (see :meth:`reset`)."""
        self.started = False
        for name in ("_send_timer", "_check_timer"):
            timer = getattr(self, name)
            if timer is not None:
                timer.cancel()
                setattr(self, name, None)

    def reset(self) -> None:
        """Stop and clear transient state so the detector can be re-armed
        after its host restarts (or after a firing has been handled)."""
        self.stop()
        self.fired = False
        self.last_heard = None

    def detach(self) -> None:
        """Stop and unregister from the host — for detectors being
        replaced (e.g. by reintegration) rather than re-armed."""
        self.stop()
        remove = getattr(self.host, "remove_heartbeat_handler", None)
        if remove is not None:
            remove(self._heartbeat_received)

    # ------------------------------------------------------------------
    # ticks
    # ------------------------------------------------------------------

    def _send_tick(self) -> None:
        self._send_timer = None
        if not self.host.alive:
            self.stop()  # crash: disarm instead of leaking a dead tick
            return
        self._sequence += 1
        self.heartbeats_sent += 1
        self._m_sent.inc()
        self.host.send_raw_datagram(
            Ipv4Datagram(
                src=self.host.ip.primary_address(),
                dst=self.peer_ip,
                protocol=IPPROTO_HEARTBEAT,
                payload=HeartbeatPayload(sender=self.host.name, sequence=self._sequence),
            )
        )
        self._send_timer = self.sim.schedule(self.interval, self._send_tick)

    def _heartbeat_received(self, datagram: Ipv4Datagram) -> None:
        if datagram.src != self.peer_ip:
            return  # another replica's heartbeat; not our peer
        self.heartbeats_received += 1
        self._m_received.inc()
        self.last_heard = self.sim.now

    def _check_tick(self) -> None:
        self._check_timer = None
        if not self.host.alive:
            self.stop()
            return
        if self.fired:
            return
        if self.last_heard is not None and self.sim.now - self.last_heard > self.timeout:
            self.fired = True
            self._m_fired.inc()
            self.tracer.emit(
                self.sim.now, "detector.failure", self.host.name, peer=str(self.peer_ip)
            )
            self.on_failure()
            return
        self._check_timer = self.sim.schedule(self.interval, self._check_tick)
