"""TCP Failover: the paper's primary contribution.

The *bridge* is a sublayer between TCP and IP on both replicated servers:

* :class:`~repro.failover.secondary.SecondaryBridge` — snoops the client's
  datagrams in promiscuous mode and feeds them to the local TCP layer;
  diverts the local TCP layer's replies to the primary (§3.1);
* :class:`~repro.failover.primary.PrimaryBridge` — delays the primary's
  own TCP output, matches it byte-for-byte against the secondary's diverted
  output, and emits to the client only what both replicas produced, with
  sequence numbers in the secondary's numbering (Δseq), ACK = min(ack_P,
  ack_S) and window = min(win_P, win_S) (§3.2–§3.4);
* :class:`~repro.failover.detector.FaultDetector` and
  :mod:`~repro.failover.takeover` — detect fail-stop crashes and run the
  §5/§6 recovery procedures;
* :class:`~repro.failover.replicated.ReplicatedServerPair` — one-call
  assembly of the whole arrangement for applications and benchmarks;
* :mod:`~repro.failover.reintegration` — re-admits a restarted replica as
  live secondary after a failover, restoring redundancy (beyond the
  paper, which leaves both §5 and §6 outcomes degraded forever).
"""

from repro.failover.delta import SeqOffset
from repro.failover.detector import FaultDetector
from repro.failover.merge import AckWindowMerge
from repro.failover.options import FailoverConfig
from repro.failover.primary import ConnectionResume, PrimaryBridge
from repro.failover.queues import OutputQueue, PayloadMismatch
from repro.failover.reintegration import (
    AppResume,
    ReintegrationResult,
    perform_reintegration,
)
from repro.failover.replicated import ReplicatedServerPair
from repro.failover.secondary import SecondaryBridge
from repro.failover.takeover import (
    perform_ip_takeover,
    rebind_failover_connections,
)

__all__ = [
    "AckWindowMerge",
    "AppResume",
    "ConnectionResume",
    "FailoverConfig",
    "FaultDetector",
    "OutputQueue",
    "PayloadMismatch",
    "PrimaryBridge",
    "ReintegrationResult",
    "ReplicatedServerPair",
    "SecondaryBridge",
    "SeqOffset",
    "perform_ip_takeover",
    "perform_reintegration",
    "rebind_failover_connections",
]
