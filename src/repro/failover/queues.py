"""The primary bridge's output queues and payload matching (§3.2, §3.4).

The primary server output queue holds payload bytes produced by the
primary's own TCP layer (already mapped into S-space); the secondary
server output queue holds payload bytes from the secondary's diverted
segments.  Because the replicas are deterministic, both queues carry the
*same application byte stream*; only the segmentation differs ("one of the
server's TCP layer might split the reply into multiple TCP segments,
whereas the other [...] might pack the entire reply into a single
segment").  Matching therefore reduces to taking the common prefix of the
two queues — Figure 2 of the paper is exactly one `enqueue` + one
`match_prefix` here.

A divergence between the streams means the application was not
deterministic; it is detected byte-for-byte and reported as
:class:`PayloadMismatch`.

This is the bridge's hottest per-segment path, so the implementation is
zero-copy where the old one materialised bytes:

* overlap verification compares ``memoryview`` byte ranges instead of
  building a ``bytes(...)`` copy of the stored run;
* suffix extension appends ``memoryview(payload)[overlap:]`` directly to
  the backing ``bytearray`` instead of slicing a new ``bytes`` object;
* ``pop`` advances a consumed-offset cursor instead of ``del data[:n]``
  (which memmoves the whole tail); the front is compacted lazily once
  the dead prefix dominates, keeping pops O(1) amortised.

Invariant for the memoryview discipline: every view over the backing
``bytearray`` is statement-local (created, compared, and dropped inside a
single expression), so no buffer export is alive when the bytearray is
resized — resizing an exported bytearray raises ``BufferError``.  The
``data`` property hands out a fresh view per call; callers must not hold
it across a mutating call (``enqueue``/``pop``/``drain``).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.tcp.seqnum import seq_add, seq_lt, seq_sub


class PayloadMismatch(Exception):
    """The replicas produced different bytes for the same sequence range."""


class OutputQueue:
    """A contiguous run of stream bytes, keyed by S-space sequence numbers.

    ``frontier`` is the sequence number one past the last byte ever
    enqueued; it is maintained even while the queue is empty so duplicate
    (retransmitted) payload can be recognised and discarded.
    """

    MAX_PENDING_CHUNKS = 256
    # Compact the consumed front only once it is both big enough to be
    # worth a memmove and at least half the buffer, so each retained byte
    # is moved O(1) times amortised.
    COMPACT_MIN_CONSUMED = 4096

    def __init__(
        self,
        initial_seq: int,
        name: str = "queue",
        metrics: Optional[MetricsRegistry] = None,
        host: str = "",
    ):
        self.name = name
        metrics = metrics or NULL_METRICS
        self._m_enqueued = metrics.counter("queue.bytes_enqueued", host=host, queue=name)
        self._m_dups = metrics.counter("queue.duplicates_discarded", host=host, queue=name)
        self._m_gaps = metrics.counter("queue.gaps_buffered", host=host, queue=name)
        self.base_seq = initial_seq  # seq of the first unconsumed byte
        self._data = bytearray()
        self._consumed = 0  # dead prefix of _data already popped out
        # Above-frontier chunks: a diverted segment can be lost between
        # the replicas (§4 case 4) while later segments still arrive, so
        # the queue must reassemble around the hole until the
        # retransmission fills it.
        self._pending: Dict[int, bytes] = {}
        self.bytes_enqueued = 0
        self.duplicates_discarded = 0
        self.gaps_buffered = 0

    def __len__(self) -> int:
        return len(self._data) - self._consumed

    @property
    def data(self) -> memoryview:
        """The unconsumed bytes as a zero-copy view.

        Valid only until the next mutating call; use ``bytes(q.data)``
        to snapshot.
        """
        return memoryview(self._data)[self._consumed :]

    @property
    def frontier(self) -> int:
        """Sequence number of the next byte we have never stored."""
        return seq_add(self.base_seq, len(self))

    def enqueue(self, seq: int, payload: bytes) -> int:
        """Add payload at ``seq``; overlap with existing bytes is verified
        and discarded.  Returns the number of genuinely new bytes made
        contiguous (out-of-order chunks are buffered and count later).

        Raises :class:`PayloadMismatch` if an overlap disagrees.
        """
        if not payload:
            return 0
        frontier = self.frontier
        if seq_lt(frontier, seq):
            # A hole: an earlier segment was lost on the replica-to-replica
            # path.  Buffer and wait for the retransmission.
            if len(self._pending) < self.MAX_PENDING_CHUNKS and seq not in self._pending:
                self._pending[seq] = payload
                self.gaps_buffered += 1
                self._m_gaps.inc()
            return 0
        overlap = seq_sub(frontier, seq)
        if overlap > 0:
            check = min(overlap, len(payload))
            stored_start = len(self) - overlap
            # Overlap entirely below base_seq (already matched and popped)
            # cannot be verified any more; only verify what we still hold.
            if stored_start >= 0:
                lo = self._consumed + stored_start
                if memoryview(self._data)[lo : lo + check] != memoryview(payload)[:check]:
                    raise PayloadMismatch(
                        f"{self.name}: replica streams diverge at seq {seq}"
                    )
            if overlap >= len(payload):
                self.duplicates_discarded += len(payload)
                self._m_dups.inc(len(payload))
                return 0
            fresh = len(payload) - overlap
            self._data += memoryview(payload)[overlap:]
        else:
            fresh = len(payload)
            self._data += payload
        self.bytes_enqueued += fresh
        self._m_enqueued.inc(fresh)
        return fresh + self._drain_pending()

    def _drain_pending(self) -> int:
        """Fold buffered above-frontier chunks that became contiguous."""
        added = 0
        while self._pending:
            match = None
            for seq in self._pending:
                overlap_or_contiguous = seq_sub(self.frontier, seq) < (1 << 31)
                if overlap_or_contiguous:
                    match = seq
                    break
            if match is None:
                return added
            payload = self._pending.pop(match)
            frontier = self.frontier
            skip = seq_sub(frontier, match)
            if skip >= len(payload):
                self.duplicates_discarded += len(payload)
                self._m_dups.inc(len(payload))
                continue
            fresh = len(payload) - skip
            self._data += memoryview(payload)[skip:]
            self.bytes_enqueued += fresh
            self._m_enqueued.inc(fresh)
            added += fresh
        return added

    def pop(self, count: int) -> bytes:
        """Remove and return ``count`` bytes from the front."""
        if count > len(self):
            raise ValueError(f"{self.name}: popping {count} of {len(self)}")
        lo = self._consumed
        out = bytes(memoryview(self._data)[lo : lo + count])
        consumed = lo + count
        self.base_seq = seq_add(self.base_seq, count)
        if consumed >= self.COMPACT_MIN_CONSUMED and consumed * 2 >= len(self._data):
            del self._data[:consumed]
            consumed = 0
        self._consumed = consumed
        return out

    def drain(self) -> Tuple[int, bytes]:
        """Remove everything; returns (first seq, bytes).  Used by the §6
        secondary-failure flush."""
        seq = self.base_seq
        out = bytes(memoryview(self._data)[self._consumed :])
        self._data.clear()
        self._consumed = 0
        self.base_seq = seq_add(seq, len(out))
        return seq, out


def match_prefix(p_queue: OutputQueue, s_queue: OutputQueue) -> Optional[Tuple[int, bytes]]:
    """Common prefix both replicas have produced, or None.

    Raises :class:`PayloadMismatch` when the prefixes disagree.  Both
    queues advance past the matched bytes.
    """
    count = min(len(p_queue), len(s_queue))
    if count == 0:
        return None
    if p_queue.base_seq != s_queue.base_seq:
        # Queue fronts can only differ if bridge bookkeeping broke.
        raise PayloadMismatch(
            f"queue fronts diverge: {p_queue.base_seq} vs {s_queue.base_seq}"
        )
    # memoryview == memoryview compares contents without materialising
    # either side; both views are statement-local (see module docstring).
    if p_queue.data[:count] != s_queue.data[:count]:
        raise PayloadMismatch(
            f"replica payloads diverge at seq {p_queue.base_seq}"
        )
    seq = p_queue.base_seq
    matched = p_queue.pop(count)
    s_queue.pop(count)
    return seq, matched
