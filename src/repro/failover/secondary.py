"""The secondary server bridge (§3.1 and §5).

In normal operation the secondary:

* runs its NIC in promiscuous mode and picks up every client datagram
  addressed to the primary; for TCP-failover traffic it rewrites the
  destination ``a_p → a_s`` (incremental checksum update) and passes the
  datagram up, so "TCP assumes that C sent this segment directly to S";
* diverts every segment its own TCP layer addresses to the client:
  destination rewritten ``a_c → a_p`` and the original destination carried
  in the ORIG_DST header option.

On primary failure the §5 procedure runs (see
:mod:`repro.failover.takeover`): stop sending, disable promiscuous mode
and both translations, take over ``a_p``, then resume — after which this
bridge is inert and the secondary "behaves like any standard TCP server."
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.net.addresses import Ipv4Address
from repro.net.packet import IPPROTO_TCP, Ipv4Datagram
from repro.failover.bridge import BridgeBase
from repro.tcp.segment import TcpSegment, incremental_rewrite

if TYPE_CHECKING:
    from repro.failover.options import FailoverConfig
    from repro.net.host import Host
    from repro.sim.trace import Tracer


class SecondaryBridge(BridgeBase):
    """Address-translating bridge on the secondary server."""

    def __init__(
        self,
        host: "Host",
        config: "FailoverConfig",
        primary_ip: Ipv4Address,
        tracer: Optional["Tracer"] = None,
        bridge_cost: float = 15e-6,
    ):
        super().__init__(host, config, tracer=tracer, bridge_cost=bridge_cost)
        self.primary_ip = primary_ip
        self.active = True
        self.holding = False
        self._held: List[Tuple[TcpSegment, Ipv4Address, Ipv4Address]] = []
        self.segments_snooped = 0
        self.segments_translated_in = 0
        self.segments_diverted_out = 0
        host_label = host.name
        self._m_snooped = self.metrics.counter("bridge.segments_snooped", host=host_label)
        self._m_translated = self.metrics.counter(
            "bridge.segments_translated_in", host=host_label
        )
        self._m_diverted = self.metrics.counter(
            "bridge.segments_diverted_out", host=host_label
        )

    def install(self) -> None:
        """Attach to the host and enable promiscuous snooping."""
        self.host.install_bridge(self)
        self.host.nic.set_promiscuous(True)

    # ------------------------------------------------------------------
    # receive side: snoop and translate a_p -> a_s  (§3.1)
    # ------------------------------------------------------------------

    def datagram_from_ip(self, datagram: Ipv4Datagram) -> Optional[Ipv4Datagram]:
        if not self.active:
            return datagram
        if self.host.ip.owns(datagram.dst):
            return datagram  # genuinely ours (ordinary traffic, heartbeats)
        self.segments_snooped += 1
        self._m_snooped.inc()
        if datagram.protocol != IPPROTO_TCP or datagram.dst != self.primary_ip:
            return None  # snooped, not for the replicated service
        segment = datagram.payload
        flag = self._connection_flag(
            self.local_ip(), segment.dst_port, datagram.src, segment.src_port
        )
        if not self._covers(segment.dst_port, flag):
            return None  # primary's ordinary (non-failover) traffic
        local = self.local_ip()
        rewritten = incremental_rewrite(
            segment,
            old_src=datagram.src,
            old_dst=self.primary_ip,
            new_dst=local,
        )
        self.segments_translated_in += 1
        self._m_translated.inc()
        self._trace(
            "bridge.s.translate_in",
            src=str(datagram.src),
            port=segment.dst_port,
            seq=segment.seq,
        )
        return replace(datagram, dst=local, payload=rewritten)

    # ------------------------------------------------------------------
    # send side: divert client-bound segments to the primary  (§3.1)
    # ------------------------------------------------------------------

    def segment_from_tcp(
        self, segment: TcpSegment, src_ip: Ipv4Address, dst_ip: Ipv4Address
    ) -> bool:
        if not self.active:
            return False
        if dst_ip == self.primary_ip:
            return False  # direct server-to-server traffic, if any
        if not self._is_failover_outgoing(segment, src_ip, dst_ip):
            return False
        if self.holding:
            # §5 step 1: "stop sending TCP segments ... addressed to the client".
            self._held.append((segment, src_ip, dst_ip))
            return True
        diverted = incremental_rewrite(
            segment,
            old_src=src_ip,
            old_dst=dst_ip,
            new_dst=self.primary_ip,
            orig_dst=dst_ip,
        )
        self.segments_diverted_out += 1
        self._m_diverted.inc()
        self._trace(
            "bridge.s.divert_out",
            orig_dst=str(dst_ip),
            seq=segment.seq,
            len=len(segment.payload),
            flags=segment.flag_names(),
        )
        # The rewrite costs CPU; the FIFO CPU keeps segments ordered.
        self.host.cpu.run(
            self.bridge_cost, self._send_datagram, diverted, src_ip, self.primary_ip
        )
        return True

    # ------------------------------------------------------------------
    # failover procedure (§5) — driven by repro.failover.takeover
    # ------------------------------------------------------------------

    def prepare_failover(self) -> None:
        """§5 steps 1–4: hold output, stop snooping, stop translating."""
        self.holding = True
        self.host.nic.set_promiscuous(False)
        self._trace("bridge.s.prepare_failover")

    def complete_failover(self, new_local_ip: Ipv4Address) -> None:
        """§5 epilogue: release held segments and go inert.

        Held segments were generated while the TCBs were still homed on
        ``a_s``; they are re-sourced to the taken-over address before
        transmission (the kernel implementation gets this for free from its
        address translation; we make it explicit).
        """
        self.active = False
        self.holding = False
        held, self._held = self._held, []
        for segment, src_ip, dst_ip in held:
            resent = incremental_rewrite(
                segment, old_src=src_ip, old_dst=dst_ip, new_src=new_local_ip
            )
            self._send_datagram(resent, new_local_ip, dst_ip)
        self._trace("bridge.s.complete_failover", released=len(held))

    def local_ip(self) -> Ipv4Address:
        return self.host.ip.primary_address()
