"""Userspace L4 proxy with weighted backends and a failover runbook.

The shape follows the CockroachDB PCR repo's proxy layer (SNIPPETS.md):
an HAProxy-style frontend with the primary weighted 100 and the standby
weighted 10, health checks demoting dead backends, and an
``integrate``-style runbook that flips routing on failover — zero the
dead backend, promote the standby to full weight, and sever the relays
still pinned to the corpse so clients fail fast instead of waiting out
TCP retransmission.

The proxy is a plain simulated application: it accepts on a front port,
dials the chosen backend from its own ephemeral range, and runs two
byte pumps per session.  Backend failure surfaces to the client as an
abort (RST), which is exactly what a pooled client needs to invalidate
and re-dial — the client tier's layers compose.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional

from repro.net.addresses import Ipv4Address
from repro.tcp.socket_api import ListeningSocket, SimSocket
from repro.clients.health import HealthMonitor

#: PCR proxy weights: primary serves ~91% of sessions, standby stays
#: warm with the remainder.
PRIMARY_WEIGHT = 100
STANDBY_WEIGHT = 10


class _Backend:
    """One routing target; bookkeeping lives here, keyed by id."""

    def __init__(self, backend_id: str, host, ip: Ipv4Address, port: int,
                 weight: int):
        self.id = backend_id
        self.host = host
        self.ip = ip
        self.port = port
        self.weight = weight
        self.healthy = True
        self.sessions = 0


class _Relay:
    """A live client↔backend session held by the proxy."""

    def __init__(self, client_sock: SimSocket, backend_sock: SimSocket,
                 backend_id: str):
        self.client_sock = client_sock
        self.backend_sock = backend_sock
        self.backend_id = backend_id
        self.finished = False


class ProxyRunbook:
    """The ``integrate.py`` analog: operator actions as callable steps.

    Every step is journalled as ``(time, action, backend_id)`` so E14
    timelines show when routing flipped relative to detection and to the
    first recovered request.
    """

    def __init__(self, proxy: "L4Proxy"):
        self.proxy = proxy
        self.steps: List[tuple] = []

    def failover(self, backend_id: str) -> None:
        """Demote a dead backend, promote the survivors, cut its relays."""
        self.steps.append((self.proxy.sim.now, "failover", backend_id))
        dead = self.proxy.backend(backend_id)
        dead.healthy = False
        dead.weight = 0
        for other_id in self.proxy.backend_ids:
            if other_id == backend_id:
                continue
            other = self.proxy.backend(other_id)
            if other.healthy and other.weight < PRIMARY_WEIGHT:
                other.weight = PRIMARY_WEIGHT
        severed = self.proxy.sever_relays(backend_id)
        self.proxy.tracer.emit(
            self.proxy.sim.now, "clients.proxy.failover",
            self.proxy.host.name, backend=backend_id, severed=severed,
        )

    def restore(self, backend_id: str, weight: int = STANDBY_WEIGHT) -> None:
        """Re-admit a recovered backend at a (low) weight."""
        self.steps.append((self.proxy.sim.now, "restore", backend_id))
        back = self.proxy.backend(backend_id)
        back.healthy = True
        back.weight = weight
        self.proxy.tracer.emit(
            self.proxy.sim.now, "clients.proxy.restore",
            self.proxy.host.name, backend=backend_id, weight=weight,
        )


class L4Proxy:
    """Weighted TCP relay over primary/standby backends."""

    def __init__(
        self,
        host,
        port: int,
        rng,
        *,
        health_interval: float = 0.010,
        health_timeout: float = 0.050,
        backlog: int = 64,
        chunk: int = 4096,
    ):
        self.host = host
        self.sim = host.sim
        self.tracer = host.tracer
        self.port = port
        self.rng = rng
        self.health_interval = health_interval
        self.health_timeout = health_timeout
        self.backlog = backlog
        self.chunk = chunk
        self._backends: Dict[str, _Backend] = {}
        self.backend_ids: List[str] = []
        self.monitors: Dict[str, HealthMonitor] = {}
        self.relays: List[_Relay] = []
        self.runbook = ProxyRunbook(self)
        self.accepted = 0
        self.refused = 0
        self.severed = 0
        self.bytes_up = 0
        self.bytes_down = 0

    # -- configuration ----------------------------------------------------

    def add_backend(self, backend_id: str, host, port: int,
                    weight: int = PRIMARY_WEIGHT,
                    ip: Optional[Ipv4Address] = None) -> None:
        addr = ip if ip is not None else host.ip.primary_address()
        self._backends[backend_id] = _Backend(backend_id, host, addr, port, weight)
        self.backend_ids.append(backend_id)

    def backend(self, backend_id: str) -> _Backend:
        return self._backends[backend_id]

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Listen, start health checks, run the accept loop."""
        self.listener = ListeningSocket.listen(
            self.host, self.port, backlog=self.backlog,
        )
        for backend_id in self.backend_ids:
            target = self._backends[backend_id].host
            monitor = HealthMonitor(
                self.host, target, self._down_callback(backend_id),
                interval=self.health_interval, timeout=self.health_timeout,
            )
            monitor.start()
            self.monitors[backend_id] = monitor
        self.host.spawn(self._accept_loop(), f"proxy.accept:{self.port}")

    def _down_callback(self, backend_id: str):
        def fire() -> None:
            if self._backends[backend_id].healthy:
                self.runbook.failover(backend_id)
        return fire

    # -- routing ----------------------------------------------------------

    def _choose(self) -> Optional[_Backend]:
        """Weighted draw over healthy backends (seeded, deterministic)."""
        live = [
            self._backends[bid] for bid in self.backend_ids
            if self._backends[bid].healthy and self._backends[bid].weight > 0
        ]
        if not live:
            return None
        total = sum(b.weight for b in live)
        roll = self.rng.random() * total
        for candidate in live:
            roll -= candidate.weight
            if roll < 0:
                return candidate
        return live[-1]

    def sever_relays(self, backend_id: str) -> int:
        """Abort every live relay pinned to ``backend_id``; returns count."""
        cut = 0
        for relay in list(self.relays):
            if relay.backend_id != backend_id or relay.finished:
                continue
            relay.finished = True
            relay.backend_sock.abort()
            relay.client_sock.abort()
            cut += 1
        self.severed += cut
        return cut

    # -- data path --------------------------------------------------------

    def _accept_loop(self) -> Generator:
        while True:
            client_sock = yield from self.listener.accept()
            choice = self._choose()
            if choice is None:
                self.refused += 1
                self.tracer.emit(
                    self.sim.now, "clients.proxy.refused", self.host.name,
                )
                client_sock.abort()
                continue
            self.accepted += 1
            choice.sessions += 1
            self.host.spawn(
                self._relay(client_sock, choice.id),
                f"proxy.relay:{choice.id}",
            )

    def _relay(self, client_sock, backend_id: str) -> Generator:
        chosen = self._backends[backend_id]
        try:
            backend_sock = SimSocket.connect(
                self.host, chosen.ip, chosen.port, failover=True,
            )
            yield from backend_sock.wait_connected()
        except (ConnectionError, OSError):
            client_sock.abort()
            return
        self.relays.append(_Relay(client_sock, backend_sock, backend_id))
        index = len(self.relays) - 1
        self.host.spawn(self._pump(index, upstream=True),
                        f"proxy.up:{backend_id}")
        yield from self._pump(index, upstream=False)

    def _pump(self, index: int, upstream: bool) -> Generator:
        relay = self.relays[index]
        src = relay.client_sock if upstream else relay.backend_sock
        dst = relay.backend_sock if upstream else relay.client_sock
        try:
            while True:
                data = yield from src.recv(self.chunk)
                if not data:
                    dst.close()
                    return
                if upstream:
                    self.bytes_up += len(data)
                else:
                    self.bytes_down += len(data)
                yield from dst.send_all(data)
        except (ConnectionError, OSError):
            if not relay.finished:
                relay.finished = True
                dst.abort()
                src.abort()
