"""Failover-aware connection pool (client tier, DESIGN.md §14).

The paper makes failover transparent *below* the client; production
mostly recovers *above* it, and the connection pool is where that
recovery succeeds or rots.  The GitHub MySQL incident (SNIPPETS.md) is
the canonical failure: pools full of sockets to a dead primary, handed
out again and again because nothing invalidated them.  This pool models
the defensive shape production drivers converged on:

* **bounded size** — at most ``max_size`` live connections; extra
  checkouts wait on an event until a slot or an idle socket frees up;
* **checkout / checkin** — LIFO idle list, so the warmest socket is
  reused first and cold sockets age out via health probes;
* **invalidate-on-error** — any I/O error aborts the socket and removes
  it from the pool; the *next* checkout dials fresh (and re-resolves,
  which is what lets a DNS flip actually take);
* **bounded retry with seeded jittered backoff** — a request survives
  up to ``retry_budget`` failed attempts, sleeping
  ``backoff_base · 2^(attempt-1) · U[0.5, 1.5)`` (capped) between them,
  every draw from an injected :mod:`repro.sim.rng` stream;
* **attempt timeouts** — a dial or in-flight request that outlives
  ``attempt_timeout`` is aborted, so a silently-dead backend costs one
  timeout per attempt, not a full TCP retransmission give-up;
* **health-probe eviction** — an optional periodic prober runs the
  wire protocol over idle sockets and evicts the ones that fail.

Every request is journalled in a :class:`RequestLedger`; the
client-visible-outcome invariant (`InvariantChecker.check_client_outcomes`)
audits that no request is silently lost or delivered twice across a
failover, DNS flip, or proxy re-route.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Generator, List, Optional

from repro.apps.request_reply import pattern_bytes
from repro.net.addresses import Ipv4Address
from repro.sim.process import Event
from repro.tcp.socket_api import SimSocket

#: Request id -> outcome label used by the ledger.
OUTCOME_ACKED = "acked"
OUTCOME_FAILED = "failed"

#: Probe request size used by the health loop (a real exchange, so a
#: probe exercises the same path a request would).
PROBE_SIZE = 4


class PoolRequestFailed(ConnectionError):
    """A request exhausted its retry budget."""


def constant_resolver(ip: Ipv4Address) -> Callable[[], Generator]:
    """A resolver that always returns ``ip`` (VIP / bridge paths)."""

    def resolve() -> Generator:
        return ip
        yield  # pragma: no cover - makes this a generator function

    return resolve


class RequestLedger:
    """Journal of every request submitted through pools.

    The ledger is the ground truth for the client-visible-outcome
    invariant: each submitted request must end in exactly one of
    ``acked`` (reply delivered to the caller) or ``failed`` (error
    reported to the caller) — never neither (silent loss), never both,
    and never more than one delivery.
    """

    def __init__(self) -> None:
        self.submitted: Dict[int, str] = {}
        self.submit_times: Dict[int, float] = {}
        self.acks: Dict[int, int] = {}
        self.failures: Dict[int, List[str]] = {}
        self._next_id = 0

    def submit(self, label: str, now: float) -> int:
        rid = self._next_id
        self._next_id += 1
        self.submitted[rid] = label
        self.submit_times[rid] = now
        return rid

    def acked(self, rid: int) -> None:
        self.acks[rid] = self.acks.get(rid, 0) + 1

    def failed(self, rid: int, reason: str) -> None:
        self.failures.setdefault(rid, []).append(reason)

    # -- queries (read-only; used by the invariant checker) -------------

    def outcome(self, rid: int) -> Optional[str]:
        if self.acks.get(rid, 0) > 0:
            return OUTCOME_ACKED
        if self.failures.get(rid):
            return OUTCOME_FAILED
        return None

    @property
    def total(self) -> int:
        return len(self.submitted)

    @property
    def acked_count(self) -> int:
        return sum(1 for rid in self.submitted if self.acks.get(rid, 0) > 0)

    @property
    def failed_count(self) -> int:
        return sum(
            1 for rid in self.submitted
            if not self.acks.get(rid, 0) and self.failures.get(rid)
        )


class ConnectionPool:
    """A bounded, failover-aware pool of :class:`SimSocket` connections.

    ``resolve`` is a generator-callable returning the backend address to
    dial; re-running it on every dial is the hook through which DNS
    re-resolution (or a static VIP) enters the pool.
    """

    def __init__(
        self,
        client,
        port: int,
        resolve: Callable[[], Generator],
        rng,
        *,
        max_size: int = 4,
        retry_budget: int = 4,
        backoff_base: float = 0.050,
        backoff_cap: float = 0.400,
        attempt_timeout: float = 0.250,
        health_interval: float = 0.0,
        ledger: Optional[RequestLedger] = None,
        name: str = "pool",
    ):
        if max_size < 1:
            raise ValueError("max_size must be at least 1")
        self.client = client
        self.sim = client.sim
        self.tracer = client.tracer
        self.spans = client.spans
        self.port = port
        self._resolve = resolve
        self.rng = rng
        self.max_size = max_size
        self.retry_budget = retry_budget
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.attempt_timeout = attempt_timeout
        self.health_interval = health_interval
        self.ledger = ledger if ledger is not None else RequestLedger()
        self.name = name
        self._idle: List[SimSocket] = []
        self._size = 0  # checked-out + idle live connections
        self._waiters: List[Event] = []
        self._closed = False
        # Counters (deterministic; folded into BENCH rows by E14).
        self.dials = 0
        self.reuses = 0
        self.invalidated = 0
        self.evicted = 0
        self.retries = 0
        self.timeouts = 0
        self.exhausted_errors = 0

    # -- sizing ----------------------------------------------------------

    @property
    def size(self) -> int:
        """Live connections the pool accounts for (idle + checked out)."""
        return self._size

    @property
    def idle_count(self) -> int:
        return len(self._idle)

    # -- checkout / checkin ---------------------------------------------

    def checkout(self) -> Generator:
        """Yield until a connection is available; returns a SimSocket."""
        while True:
            while self._idle:
                sock = self._idle.pop()
                if sock.connected:
                    self.reuses += 1
                    return sock
                # A peer reset while the socket sat idle: drop it.
                self._drop(sock, "idle-dead")
            if self._size < self.max_size:
                self._size += 1
                try:
                    sock = yield from self._dial()
                except BaseException:
                    self._size -= 1
                    self._wake()
                    raise
                return sock
            waiter = Event(self.sim, name=f"{self.name}.wait")
            self._waiters.append(waiter)
            yield waiter

    def checkin(self, sock: SimSocket) -> None:
        """Return a healthy connection to the idle list."""
        if self._closed or not sock.connected:
            self._drop(sock, "checkin-dead")
            return
        self._idle.append(sock)
        self._wake()

    def invalidate(self, sock: SimSocket) -> None:
        """Evict a broken connection: abort it and free its slot."""
        self.invalidated += 1
        self.tracer.emit(
            self.sim.now, "clients.pool.invalidate", self.client.name,
            pool=self.name,
        )
        sock.abort()
        self._drop(sock, "invalidated")

    def close(self) -> None:
        """Abort all idle connections and refuse further checkins."""
        self._closed = True
        idle = list(self._idle)
        self._idle = []
        for sock in idle:
            sock.abort()
            self._size -= 1
        self._wake()

    def _drop(self, sock: SimSocket, why: str) -> None:
        if sock in self._idle:
            self._idle.remove(sock)
        self._size -= 1
        self._wake()

    def _wake(self) -> None:
        waiters = self._waiters
        self._waiters = []
        for waiter in waiters:
            if not waiter.triggered:
                waiter.succeed()

    # -- dialing ---------------------------------------------------------

    def _dial(self) -> Generator:
        ip = yield from self._resolve()
        try:
            sock = SimSocket.connect(self.client, ip, self.port, failover=True)
        except OSError:
            self.exhausted_errors += 1
            raise
        self.dials += 1
        timer = self.sim.schedule(self.attempt_timeout, self._expire, sock)
        try:
            yield from sock.wait_connected()
        finally:
            timer.cancel()
        return sock

    def _expire(self, sock: SimSocket) -> None:
        """Attempt timeout: abort so the waiter unblocks with an error."""
        self.timeouts += 1
        self.tracer.emit(
            self.sim.now, "clients.pool.timeout", self.client.name,
            pool=self.name,
        )
        sock.abort()

    # -- the request path -------------------------------------------------

    def request(self, size: int, label: str = "") -> Generator:
        """Run one request/reply exchange with bounded retry.

        Returns the reply bytes; raises :class:`PoolRequestFailed` once
        the retry budget is spent.  Every outcome is journalled.
        """
        rid = self.ledger.submit(label or f"{self.name}/{size}", self.sim.now)
        attempts = 0
        last_error: Optional[BaseException] = None
        while True:
            attempts += 1
            sock: Optional[SimSocket] = None
            try:
                sock = yield from self.checkout()
            except (ConnectionError, OSError) as exc:
                last_error = exc
            if sock is not None:
                timer = self.sim.schedule(self.attempt_timeout, self._expire, sock)
                try:
                    yield from sock.send_all(struct.pack(">I", size))
                    reply = yield from sock.recv_exactly(size)
                except (ConnectionError, OSError) as exc:
                    last_error = exc
                    timer.cancel()
                    self.invalidate(sock)
                else:
                    timer.cancel()
                    self.ledger.acked(rid)
                    self.checkin(sock)
                    return reply
            if attempts > self.retry_budget:
                reason = f"{type(last_error).__name__}: {last_error}"
                self.ledger.failed(rid, reason)
                self.tracer.emit(
                    self.sim.now, "clients.pool.budget_spent", self.client.name,
                    pool=self.name, attempts=attempts,
                )
                raise PoolRequestFailed(
                    f"{self.name}: request failed after {attempts} attempts"
                    f" ({reason})"
                )
            self.retries += 1
            self.tracer.emit(
                self.sim.now, "clients.pool.retry", self.client.name,
                pool=self.name, attempt=attempts,
            )
            yield self._backoff(attempts)

    def _backoff(self, attempt: int) -> float:
        """Exponential backoff with seeded jitter: base·2^(n-1)·U[0.5,1.5)."""
        raw = self.backoff_base * (2 ** (attempt - 1))
        return min(raw, self.backoff_cap) * (0.5 + self.rng.random())

    # -- health probes ----------------------------------------------------

    def start_health_probes(self) -> None:
        """Spawn the periodic idle-connection prober on the client host."""
        if self.health_interval <= 0:
            raise ValueError("health_interval must be positive to probe")
        self.client.spawn(self._health_loop(), f"{self.name}.health")

    def _health_loop(self) -> Generator:
        while not self._closed:
            yield self.health_interval
            # Probe the coldest idle socket (front of the LIFO list):
            # the warm end is validated by regular traffic already.
            if not self._idle:
                continue
            sock = self._idle.pop(0)
            timer = self.sim.schedule(self.attempt_timeout, self._expire, sock)
            try:
                yield from sock.send_all(struct.pack(">I", PROBE_SIZE))
                reply = yield from sock.recv_exactly(PROBE_SIZE)
            except (ConnectionError, OSError):
                timer.cancel()
                self.evicted += 1
                self.tracer.emit(
                    self.sim.now, "clients.pool.evict", self.client.name,
                    pool=self.name,
                )
                sock.abort()
                self._drop(sock, "probe-failed")
            else:
                timer.cancel()
                if reply == pattern_bytes(PROBE_SIZE, salt=PROBE_SIZE & 0xFF):
                    self.checkin(sock)
                else:
                    self.evicted += 1
                    sock.abort()
                    self._drop(sock, "probe-corrupt")
