"""E14: one seeded workload, four recovery paths (EXPERIMENTS.md §E14).

The paper recovers a failed server *below* the client: the secondary
takes over the primary's IP with synchronized TCBs and established
connections simply continue.  Production mostly recovers *above* the
client instead.  This experiment runs the **same seeded workload** —
identical per-session request-size and think-time streams — through
four recovery paths and measures what each client actually saw:

* ``bridge`` — the paper's transparent failover
  (:class:`ReplicatedServerPair`): connections survive, in-flight
  requests stall only for detection + takeover + one retransmit.
* ``vip``    — bare IP takeover without TCB replication: the standby
  grabs the VIP and answers retransmissions with RSTs; pools
  invalidate and reconnect.
* ``proxy``  — an L4 proxy (PCR-style weights 100/10) health-checks the
  backends and flips routing via its runbook; severed relays surface to
  pools as resets.
* ``dns``    — the GitHub-incident path: distinct server addresses, a
  Route 53-style health-checked record flips the zone, and recovery
  waits on every resolver cache's TTL.  Clients in the TTL-ignoring
  misbehavior mode keep dialing the corpse until their retry budgets
  die — the only path that *fails* requests.

Per-path output: the per-request latency distribution in pre/during/
post windows, the client-visible blackout (last success before the
crash to first success after it), failed-request counts, and pool/DNS
counters.  ``client_paths_bench_rows`` folds it into
``BENCH_client_paths.json``; byte-identical replay is part of the
artifact's contract (CI runs the cell twice and ``cmp``'s them).
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional, Tuple

from repro.apps.request_reply import pattern_bytes, reply_server
from repro.clients.dns import AuthoritativeZone, HealthCheckedRecord, ResolverCache
from repro.clients.health import HealthMonitor
from repro.clients.pool import (
    ConnectionPool, PoolRequestFailed, RequestLedger, constant_resolver,
)
from repro.clients.proxy import L4Proxy, PRIMARY_WEIGHT, STANDBY_WEIGHT
from repro.harness.invariants import InvariantChecker
from repro.harness.metrics import Stats, summarize
from repro.harness.topology import (
    BRIDGE_COST, CLIENT_ARP_DELAY, CLIENT_PROFILE, EMIT_COST, SERVER_PROFILE,
    HostProfile,
)
from repro.failover.replicated import ReplicatedServerPair
from repro.net.addresses import Ipv4Address, MacAddress
from repro.net.ethernet import EthernetSegment
from repro.net.host import Host
from repro.obs.spans import NULL_SPANS, SpanTracer
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer

#: The recovery paths E14 compares, in publication order.  The ISSUE's
#: three required paths are bridge/vip/dns; proxy rides along because
#: the PCR repo's production stack is proxy-shaped.
PATHS: Tuple[str, ...] = ("bridge", "vip", "proxy", "dns")

SERVICE_NAME = "svc.shop.example"
SERVICE_PORT = 8000

PRIMARY_IP = Ipv4Address("10.0.0.2")
SECONDARY_IP = Ipv4Address("10.0.0.3")
MONITOR_IP = Ipv4Address("10.0.0.9")
PROXY_IP = Ipv4Address("10.0.0.10")

#: Trace categories that mark recovery milestones, for the timeline.
TIMELINE_CATEGORIES = (
    "detector.failure",
    "takeover.complete",
    "clients.health.down",
    "clients.dns.flip",
    "clients.proxy.failover",
    "clients.vip.takeover",
)

EMPTY_STATS = Stats(count=0, median=0.0, mean=0.0, minimum=0.0, maximum=0.0,
                    p90=0.0, p99=0.0, stddev=0.0)


def _summarize(samples: List[float]) -> Stats:
    return summarize(samples) if samples else EMPTY_STATS


def _mac(index: int) -> MacAddress:
    return MacAddress(0x0200_00CE_0000 + index)


def _client_ip(index: int) -> Ipv4Address:
    return Ipv4Address(f"10.0.0.{50 + index}")


class PathStats:
    """Per-request samples and failures for one path's run."""

    def __init__(self) -> None:
        self.samples: List[Tuple[float, float, int]] = []  # (t, latency, session)
        self.failures: List[Tuple[float, int, str]] = []
        self.corrupt_replies = 0
        self.sessions_started = 0
        self.sessions_completed = 0
        self.sessions_failed = 0

    def record(self, now: float, latency: float, session: int) -> None:
        self.samples.append((now, latency, session))

    def record_failure(self, now: float, session: int, reason: str) -> None:
        self.failures.append((now, session, reason))

    def latencies_between(self, start: float, end: float) -> List[float]:
        return [lat for t, lat, _ in self.samples if start <= t < end]

    @property
    def requests_completed(self) -> int:
        return len(self.samples)

    @property
    def requests_failed(self) -> int:
        return len(self.failures)

    def blackout(self, crash_at: float) -> Optional[float]:
        """Last success before the crash → first success at/after it."""
        before = [t for t, _, _ in self.samples if t < crash_at]
        after = [t for t, _, _ in self.samples if t >= crash_at]
        if not before or not after:
            return None
        return min(after) - max(before)


class PathResult:
    """Everything one recovery-path run measured."""

    def __init__(
        self,
        path: str,
        stats: PathStats,
        ledger: RequestLedger,
        checker: InvariantChecker,
        tracer: Tracer,
        pools: List[ConnectionPool],
        crash_at: float,
        recovery_window: float,
        finished_at: float,
        extras: Dict[str, object],
    ):
        self.path = path
        self.stats = stats
        self.ledger = ledger
        self.checker = checker
        self.tracer = tracer
        self.pools = pools
        self.crash_at = crash_at
        self.recovery_window = recovery_window
        self.finished_at = finished_at
        self.extras = extras

    def latency_windows(self) -> Dict[str, Stats]:
        stats = self.stats
        return {
            "pre": _summarize(stats.latencies_between(0.0, self.crash_at)),
            "during": _summarize(stats.latencies_between(
                self.crash_at, self.crash_at + self.recovery_window)),
            "post": _summarize(stats.latencies_between(
                self.crash_at + self.recovery_window, self.finished_at + 1.0)),
        }

    def timeline(self) -> List[Tuple[float, str, str]]:
        """First occurrence of each recovery milestone, time-ordered."""
        seen: Dict[str, Tuple[float, str]] = {}
        for category in TIMELINE_CATEGORIES:
            for record in self.tracer.select(category=category):
                if category not in seen:
                    seen[category] = (record.time, record.node)
        return sorted(
            (time, category, node)
            for category, (time, node) in seen.items()
        )

    def pool_counters(self) -> Dict[str, int]:
        totals = {"dials": 0, "reuses": 0, "invalidated": 0, "evicted": 0,
                  "retries": 0, "timeouts": 0}
        for pool in self.pools:
            totals["dials"] += pool.dials
            totals["reuses"] += pool.reuses
            totals["invalidated"] += pool.invalidated
            totals["evicted"] += pool.evicted
            totals["retries"] += pool.retries
            totals["timeouts"] += pool.timeouts
        return totals

    def invariants_ok(self) -> bool:
        return self.checker.ok


class _PathLan:
    """One path's topology: clients, servers and the recovery machinery."""

    def __init__(self, seed: int, clients: int, span_sample_rate: float,
                 record_traces: bool):
        self.sim = Simulator()
        self.registry = RngRegistry(seed)
        self.tracer = Tracer(record=record_traces, max_records=200_000)
        if span_sample_rate > 0:
            self.spans: SpanTracer = SpanTracer(
                sample_rate=span_sample_rate,
                rng=self.registry.stream("obs.spans"),
            )
        else:
            self.spans = NULL_SPANS
        self.segment = EthernetSegment(
            self.sim, name="lan", collision_prob=0.0, tracer=self.tracer,
            rng=self.registry.stream("ethernet"),
        )
        self.clients: List[Host] = []
        for i in range(clients):
            client = self._host(f"client{i}", 50 + i, CLIENT_PROFILE,
                                gratuitous_apply_delay=CLIENT_ARP_DELAY)
            client.attach_ethernet(self.segment, _client_ip(i))
            client.tcp.conn_defaults.update({"min_rto": 0.05})
            self.clients.append(client)
        self.servers: List[Host] = []

    def _host(self, name: str, index: int, profile: HostProfile,
              gratuitous_apply_delay: float = 0.0) -> Host:
        return Host(
            self.sim, name, _mac(index), tracer=self.tracer,
            rng=self.registry.stream(f"host.{name}"),
            spans=self.spans,
            rx_segment_cost=profile.rx_segment_cost,
            rx_byte_cost=profile.rx_byte_cost,
            tx_segment_cost=profile.tx_segment_cost,
            tx_byte_cost=profile.tx_byte_cost,
            cpu_jitter=profile.cpu_jitter,
            cpu_spike_prob=profile.cpu_spike_prob,
            cpu_spike_cost=profile.cpu_spike_cost,
            app_write_fixed_cost=profile.app_write_fixed_cost,
            app_write_byte_cost=profile.app_write_byte_cost,
            gratuitous_apply_delay=gratuitous_apply_delay,
        )

    def add_server(self, name: str, index: int, ip: Ipv4Address) -> Host:
        server = self._host(name, index, SERVER_PROFILE)
        server.attach_ethernet(self.segment, ip)
        self.servers.append(server)
        return server

    def warm_arp(self) -> None:
        """Prime every host pair so ARP traffic never perturbs timing."""
        hosts = self.clients + self.servers
        for a in hosts:
            for b in hosts:
                if a is b:
                    continue
                a.eth_interface.arp.prime(
                    b.ip.primary_address(), b.nic.mac,
                )


class ClientWorkload:
    """Closed-loop sessions round-robinned over the per-client pools.

    Request sizes and think times come from per-session named streams,
    so every path replays the identical workload regardless of how its
    recovery machinery interleaves events.  The workload owns its
    :class:`PathStats` and completion counter.
    """

    def __init__(self, lan: _PathLan, pools: List[ConnectionPool],
                 sessions: int, stop_at: float, think_mean: float):
        self.lan = lan
        self.pools = pools
        self.sessions = sessions
        self.stop_at = stop_at
        self.think_mean = think_mean
        self.stats = PathStats()
        self.finished = 0

    @property
    def done(self) -> bool:
        return self.finished >= self.sessions

    def start(self) -> None:
        for i in range(self.sessions):
            pool = self.pools[i % len(self.pools)]
            rng = self.lan.registry.stream(f"clients.workload.session{i}")
            start_at = 0.010 + 0.005 * i
            self.stats.sessions_started += 1
            self.lan.sim.call_at(
                start_at,
                pool.client.spawn,
                self._session(pool, i, rng),
                f"session{i}",
            )

    def _session(self, pool: ConnectionPool, session_id: int,
                 rng) -> Generator:
        failed = False
        while self.lan.sim.now < self.stop_at:
            size = 64 + int(rng.random() * 960)
            started = self.lan.sim.now
            try:
                reply = yield from pool.request(size, label=f"s{session_id}")
            except (PoolRequestFailed, OSError) as exc:
                self.stats.record_failure(
                    self.lan.sim.now, session_id, type(exc).__name__)
                failed = True
                break
            if reply != pattern_bytes(size, salt=size & 0xFF):
                self.stats.corrupt_replies += 1
            self.stats.record(
                self.lan.sim.now, self.lan.sim.now - started, session_id)
            yield self.think_mean * -_ln(1.0 - rng.random())
        if failed:
            self.stats.sessions_failed += 1
        else:
            self.stats.sessions_completed += 1
        self.finished += 1


def _ln(x: float) -> float:
    # math.log inlined via import at module scope would be fine; keep the
    # exponential-think draw explicit and centralized here.
    import math
    return math.log(x) if x > 0 else -50.0


def run_client_path(
    path: str,
    seed: int = 0,
    *,
    clients: int = 3,
    sessions: int = 12,
    crash_at: float = 0.35,
    recovery_window: float = 2.0,
    hold_after: float = 0.8,
    think_mean: float = 0.080,
    pool_size: int = 2,
    retry_budget: int = 6,
    backoff_base: float = 0.050,
    attempt_timeout: float = 0.250,
    health_interval: float = 0.500,
    ttl: float = 1.0,
    ttl_ignoring_clients: int = 1,
    lookup_delay: float = 0.002,
    detector_interval: float = 0.010,
    detector_timeout: float = 0.050,
    span_sample_rate: float = 0.0,
    record_traces: bool = True,
) -> PathResult:
    """Run one recovery path's cell and return its measurements."""
    if path not in PATHS:
        raise ValueError(f"unknown path {path!r}; expected one of {PATHS}")
    lan = _PathLan(seed, clients, span_sample_rate, record_traces)
    ledger = RequestLedger()
    extras: Dict[str, object] = {}
    crash_time = float(crash_at)
    stop_at = crash_time + recovery_window + hold_after

    # -- servers and the recovery machinery ------------------------------
    crash: Callable[[], None]
    resolvers: List[Callable[[], Generator]] = []
    if path == "bridge":
        primary = lan.add_server("primary", 2, PRIMARY_IP)
        secondary = lan.add_server("secondary", 3, SECONDARY_IP)
        pair = ReplicatedServerPair(
            primary, secondary, failover_ports=(SERVICE_PORT,),
            detector_interval=detector_interval,
            detector_timeout=detector_timeout,
            bridge_cost=BRIDGE_COST, emit_cost=EMIT_COST,
        )
        lan.warm_arp()
        pair.run_app(
            lambda host: reply_server(host, SERVICE_PORT, max_requests=None),
            name="reply",
        )
        pair.start_detectors()
        service_ip = pair.service_ip
        crash = pair.crash_primary
        resolvers = [constant_resolver(service_ip) for _ in range(clients)]
        extras["pair"] = pair
    elif path == "vip":
        primary = lan.add_server("primary", 2, PRIMARY_IP)
        standby = lan.add_server("standby", 3, SECONDARY_IP)
        lan.warm_arp()
        primary.spawn(
            reply_server(primary, SERVICE_PORT, max_requests=None), "reply")
        standby.spawn(
            reply_server(standby, SERVICE_PORT, max_requests=None), "reply")

        def take_vip() -> None:
            standby.eth_interface.add_address(PRIMARY_IP)
            standby.eth_interface.arp.announce(PRIMARY_IP)
            lan.tracer.emit(
                lan.sim.now, "clients.vip.takeover", standby.name,
                ip=str(PRIMARY_IP),
            )

        monitor = HealthMonitor(
            standby, primary, take_vip,
            interval=detector_interval, timeout=detector_timeout,
        )
        monitor.start()
        crash = primary.crash
        resolvers = [constant_resolver(PRIMARY_IP) for _ in range(clients)]
        extras["monitor"] = monitor
    elif path == "proxy":
        primary = lan.add_server("primary", 2, PRIMARY_IP)
        standby = lan.add_server("standby", 3, SECONDARY_IP)
        frontend = lan.add_server("proxy", 10, PROXY_IP)
        lan.warm_arp()
        primary.spawn(
            reply_server(primary, SERVICE_PORT, max_requests=None), "reply")
        standby.spawn(
            reply_server(standby, SERVICE_PORT, max_requests=None), "reply")
        proxy = L4Proxy(
            frontend, SERVICE_PORT, lan.registry.stream("clients.proxy"),
            health_interval=detector_interval, health_timeout=detector_timeout,
        )
        proxy.add_backend("primary", primary, SERVICE_PORT,
                          weight=PRIMARY_WEIGHT)
        proxy.add_backend("standby", standby, SERVICE_PORT,
                          weight=STANDBY_WEIGHT)
        proxy.start()
        crash = primary.crash
        resolvers = [constant_resolver(PROXY_IP) for _ in range(clients)]
        extras["proxy"] = proxy
    else:  # dns
        primary = lan.add_server("primary", 2, PRIMARY_IP)
        standby = lan.add_server("standby", 3, SECONDARY_IP)
        monitor_host = lan.add_server("dns-monitor", 9, MONITOR_IP)
        lan.warm_arp()
        primary.spawn(
            reply_server(primary, SERVICE_PORT, max_requests=None), "reply")
        standby.spawn(
            reply_server(standby, SERVICE_PORT, max_requests=None), "reply")
        zone = AuthoritativeZone(lan.sim, tracer=lan.tracer)
        record = HealthCheckedRecord(
            zone, SERVICE_NAME, PRIMARY_IP, SECONDARY_IP, ttl,
            monitor_host, primary,
            check_interval=detector_interval, check_timeout=detector_timeout,
        )
        record.start()
        caches: List[ResolverCache] = []
        for i, client in enumerate(lan.clients):
            cache = ResolverCache(
                client, zone,
                respect_ttl=(i >= ttl_ignoring_clients),
                lookup_delay=lookup_delay,
            )
            caches.append(cache)
            resolvers.append(cache.resolver_for(SERVICE_NAME))
        crash = primary.crash
        extras["zone"] = zone
        extras["record"] = record
        extras["caches"] = caches

    # -- pools and workload ----------------------------------------------
    pools: List[ConnectionPool] = []
    for i, client in enumerate(lan.clients):
        pool = ConnectionPool(
            client, SERVICE_PORT, resolvers[i],
            lan.registry.stream(f"clients.pool.client{i}"),
            max_size=pool_size, retry_budget=retry_budget,
            backoff_base=backoff_base, attempt_timeout=attempt_timeout,
            health_interval=health_interval, ledger=ledger,
            name=f"pool{i}",
        )
        if health_interval > 0:
            pool.start_health_probes()
        pools.append(pool)
    workload = ClientWorkload(lan, pools, sessions, stop_at, think_mean)
    workload.start()

    # -- run ---------------------------------------------------------------
    lan.sim.call_at(crash_time, crash)
    deadline = stop_at + retry_budget * (attempt_timeout + 2 * backoff_base) + 5.0
    lan.sim.run_until(lambda: workload.done, timeout=deadline)
    finished_at = lan.sim.now
    lan.sim.run(until=finished_at + 0.5)

    checker = InvariantChecker(lan.tracer)
    checker.check_client_outcomes(ledger, now=finished_at)
    return PathResult(
        path=path, stats=workload.stats, ledger=ledger, checker=checker,
        tracer=lan.tracer, pools=pools, crash_at=crash_time,
        recovery_window=recovery_window, finished_at=finished_at,
        extras=extras,
    )


def run_client_paths(
    seed: int = 0,
    paths: Tuple[str, ...] = PATHS,
    **cell,
) -> Dict[str, PathResult]:
    """Run every requested path from the same seed; dict in PATHS order."""
    results: Dict[str, PathResult] = {}
    for path in PATHS:
        if path in paths:
            results[path] = run_client_path(path, seed, **cell)
    return results


def client_paths_bench_rows(
    results: Dict[str, PathResult], seed: int, **cell
) -> Dict[str, object]:
    """The BENCH-artifact payload (params / results / stats) for one run."""
    rows: List[Dict[str, object]] = []
    stats_block: Dict[str, Dict[str, float]] = {}
    p99_during: Dict[str, float] = {}
    for path, result in results.items():
        windows = result.latency_windows()
        counters = result.pool_counters()
        blackout = result.stats.blackout(result.crash_at)
        p99_during[path] = windows["during"].p99
        metrics: Dict[str, object] = {
            "requests_completed": result.stats.requests_completed,
            "requests_failed": result.stats.requests_failed,
            "sessions_completed": result.stats.sessions_completed,
            "sessions_failed": result.stats.sessions_failed,
            "corrupt_replies": result.stats.corrupt_replies,
            "blackout_ms": round(blackout * 1e3, 3) if blackout is not None else -1.0,
            "during_p50_ms": round(windows["during"].median * 1e3, 3),
            "during_p99_ms": round(windows["during"].p99 * 1e3, 3),
            "during_max_ms": round(windows["during"].maximum * 1e3, 3),
            "pool_dials": counters["dials"],
            "pool_invalidated": counters["invalidated"],
            "pool_evicted": counters["evicted"],
            "pool_retries": counters["retries"],
            "pool_timeouts": counters["timeouts"],
            "outcomes_ok": int(result.invariants_ok()),
        }
        if path == "dns":
            caches = result.extras.get("caches", [])
            metrics["dns_stale_hits"] = sum(c.stale_hits for c in caches)
            metrics["dns_authoritative_queries"] = sum(
                c.authoritative_queries for c in caches)
        rows.append({"label": path, "metrics": metrics})
        for label, window in windows.items():
            stats_block[f"{path}.{label}"] = window.as_dict()
    if "bridge" in p99_during and "dns" in p99_during and p99_during["bridge"] > 0:
        rows.append({
            "label": "clients:ratio",
            "metrics": {
                "dns_over_bridge_p99": round(
                    p99_during["dns"] / p99_during["bridge"], 3),
            },
        })
    params: Dict[str, object] = {"seed": seed, "paths": sorted(results)}
    params.update({key: cell[key] for key in sorted(cell)})
    return {"params": params, "results": rows, "stats": stats_block}
