"""Deterministic DNS model: zone, resolver caches, health-checked failover.

Modeled on the recovery path production actually uses — and on how it
goes wrong.  A Route 53-style failover record flips an A record from the
primary to the standby when health checks fail; every client then
*should* converge within one TTL.  The GitHub MySQL incident
(SNIPPETS.md) shows the two ways that promise breaks: resolver caches
that ignore TTLs, and connection pools that never re-resolve.  Both
misbehaviors are first-class here:

* :class:`AuthoritativeZone` — name → (address, TTL) records with a
  monotonically increasing serial per change;
* :class:`ResolverCache` — a per-client stub resolver cache.  In
  ``respect_ttl`` mode an entry expires ``ttl`` seconds after it was
  fetched (measured on the simulation clock); in the TTL-ignoring mode
  an entry, once cached, is served forever — the documented misbehavior
  of several stub resolvers and JVM defaults;
* :class:`HealthCheckedRecord` — the Route 53 failover analog: a
  monitor host health-checks the primary and rewrites the zone record
  to the standby when it goes dark.

Lookups cost ``lookup_delay`` simulated seconds on a cache miss (the
authoritative round trip); cache hits are free.  All state changes are
traced (``clients.dns.*``) so E14 timelines show exactly when the flip
happened and which clients kept dialing the corpse.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Tuple

from repro.net.addresses import Ipv4Address
from repro.clients.health import HealthMonitor


class DnsError(Exception):
    """Name not present in the zone."""


class AuthoritativeZone:
    """The authoritative store: name → (address, ttl), with a serial."""

    def __init__(self, sim, tracer=None):
        self.sim = sim
        self.tracer = tracer
        self.serial = 0
        self._records: Dict[str, Tuple[Ipv4Address, float]] = {}
        self.changes: List[Tuple[float, str, Ipv4Address]] = []

    def set_record(self, name: str, ip: Ipv4Address, ttl: float) -> None:
        self.serial += 1
        self._records[name] = (ip, ttl)
        self.changes.append((self.sim.now, name, ip))
        if self.tracer is not None:
            self.tracer.emit(
                self.sim.now, "clients.dns.record", "zone",
                name=name, ip=str(ip), ttl=ttl, serial=self.serial,
            )

    def lookup(self, name: str) -> Tuple[Ipv4Address, float]:
        try:
            return self._records[name]
        except KeyError:
            raise DnsError(f"NXDOMAIN: {name}") from None


class ResolverCache:
    """A per-client stub resolver cache over one authoritative zone."""

    def __init__(
        self,
        client,
        zone: AuthoritativeZone,
        *,
        respect_ttl: bool = True,
        lookup_delay: float = 0.002,
        min_ttl: float = 0.0,
    ):
        self.client = client
        self.sim = client.sim
        self.tracer = client.tracer
        self.zone = zone
        self.respect_ttl = respect_ttl
        self.lookup_delay = lookup_delay
        self.min_ttl = min_ttl
        self._cache: Dict[str, Tuple[Ipv4Address, float]] = {}
        self.queries = 0
        self.authoritative_queries = 0
        self.stale_hits = 0

    def resolve(self, name: str) -> Generator:
        """Resolve ``name``; yields the lookup delay on a cache miss."""
        self.queries += 1
        entry = self._cache.get(name)
        if entry is not None:
            ip, expires = entry
            if not self.respect_ttl:
                # Misbehaving mode: a cached entry never expires.  Count
                # the hits served past their TTL — the smoking gun E14
                # surfaces in its per-client breakdown.
                if self.sim.now >= expires:
                    self.stale_hits += 1
                    self.tracer.emit(
                        self.sim.now, "clients.dns.stale_hit",
                        self.client.name, name=name, ip=str(ip),
                    )
                return ip
            if self.sim.now < expires:
                return ip
            del self._cache[name]
        if self.lookup_delay > 0:
            yield self.lookup_delay
        ip, ttl = self.zone.lookup(name)
        self.authoritative_queries += 1
        self._cache[name] = (ip, self.sim.now + max(ttl, self.min_ttl))
        return ip

    def resolver_for(self, name: str):
        """A zero-arg generator-callable for :class:`ConnectionPool`."""

        def resolve() -> Generator:
            ip = yield from self.resolve(name)
            return ip

        return resolve

    def flush(self, name: Optional[str] = None) -> None:
        if name is None:
            self._cache = {}
        else:
            self._cache.pop(name, None)


class HealthCheckedRecord:
    """Route 53-style failover record: flip to standby on health failure."""

    def __init__(
        self,
        zone: AuthoritativeZone,
        name: str,
        primary_ip: Ipv4Address,
        standby_ip: Ipv4Address,
        ttl: float,
        monitor_host,
        primary_host,
        *,
        check_interval: float = 0.010,
        check_timeout: float = 0.050,
    ):
        self.zone = zone
        self.name = name
        self.primary_ip = primary_ip
        self.standby_ip = standby_ip
        self.ttl = ttl
        self.flipped_at: Optional[float] = None
        zone.set_record(name, primary_ip, ttl)
        self.monitor = HealthMonitor(
            monitor_host, primary_host, self._flip,
            interval=check_interval, timeout=check_timeout,
        )

    def start(self) -> None:
        self.monitor.start()

    def _flip(self) -> None:
        if self.flipped_at is not None:
            return
        self.flipped_at = self.zone.sim.now
        self.zone.set_record(self.name, self.standby_ip, self.ttl)
        if self.zone.tracer is not None:
            self.zone.tracer.emit(
                self.zone.sim.now, "clients.dns.flip", "zone",
                name=self.name, to=str(self.standby_ip),
            )
