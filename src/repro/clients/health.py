"""Health checking between client-tier components and backends.

The failover plane's :class:`FaultDetector` is one-directional: a
detector both *emits* heartbeats toward its peer and *watches* for the
peer's.  A proxy or DNS health checker therefore needs a detector pair —
one on the watcher (fires ``on_down``) and a beacon on the target (its
callback is a no-op; it exists so the target advertises liveness).  This
module packages that pair so the proxy, VIP and Route 53-style monitors
all check health the same deterministic way.
"""

from __future__ import annotations

from typing import Generator, List

from repro.failover.detector import FaultDetector


class HealthMonitor:
    """A watcher→target detector pair with a named ``on_down`` callback."""

    def __init__(
        self,
        watcher,
        target,
        on_down,
        *,
        interval: float = 0.010,
        timeout: float = 0.050,
    ):
        self.watcher = watcher
        self.target = target
        self.fired_at: List[float] = []
        self._on_down = on_down
        watcher_ip = watcher.ip.primary_address()
        target_ip = target.ip.primary_address()
        self.monitor = FaultDetector(
            watcher, target_ip, on_failure=self._fire,
            interval=interval, timeout=timeout,
        )
        self.beacon = FaultDetector(
            target, watcher_ip, on_failure=self._ignore,
            interval=interval, timeout=timeout,
        )

    def start(self) -> None:
        self.monitor.start()
        self.beacon.start()

    def stop(self) -> None:
        self.monitor.stop()
        self.beacon.stop()

    def _fire(self) -> None:
        self.fired_at.append(self.watcher.sim.now)
        self.watcher.tracer.emit(
            self.watcher.sim.now, "clients.health.down", self.watcher.name,
            target=self.target.name,
        )
        self._on_down()

    def _ignore(self) -> None:
        """The beacon watches the watcher only to keep heartbeats flowing."""
