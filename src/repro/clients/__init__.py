"""Client tier: pools, proxy, DNS, and the recovery-path comparison.

The paper recovers failures *below* the client (transparent TCB
failover); production recovers *above* it (pools, proxies, DNS).  This
package models the production client tier so E14 can compare both
worlds on one seeded workload.  See DESIGN.md §14.
"""

from repro.clients.dns import (
    AuthoritativeZone, DnsError, HealthCheckedRecord, ResolverCache,
)
from repro.clients.health import HealthMonitor
from repro.clients.pool import (
    ConnectionPool, PoolRequestFailed, RequestLedger, constant_resolver,
)
from repro.clients.proxy import (
    L4Proxy, PRIMARY_WEIGHT, ProxyRunbook, STANDBY_WEIGHT,
)
from repro.clients.paths import (
    PATHS, PathResult, PathStats, client_paths_bench_rows,
    run_client_path, run_client_paths,
)

__all__ = [
    "AuthoritativeZone",
    "ConnectionPool",
    "DnsError",
    "HealthCheckedRecord",
    "HealthMonitor",
    "L4Proxy",
    "PATHS",
    "PathResult",
    "PathStats",
    "PoolRequestFailed",
    "PRIMARY_WEIGHT",
    "ProxyRunbook",
    "RequestLedger",
    "ResolverCache",
    "STANDBY_WEIGHT",
    "client_paths_bench_rows",
    "constant_resolver",
    "run_client_path",
    "run_client_paths",
]
