"""E5 — Figure 6: FTP get/put rates over a WAN (KB/s).

Paper (client-reported rates, wide-area path, high variance):

    | file KB | get std | get fo | put std | put fo  |
    | 0.2     | 8.75    | 8.75   | 512.38  | 536.05  |
    | 1.3     | 59.03   | 59.03  | 2033.76 | 2036.87 |
    | 18.2    | 90.41   | 70.74  | 3846.13 | 3890.42 |
    | 144.9   | 156.80  | 138.35 | 219.52  | 200.31  |
    | 1738.1  | 176.03  | 171.72 | 168.07  | 176.63  |

Shape to reproduce: over a WAN the failover penalty nearly vanishes (the
bottleneck is the wide-area path, not the server LAN) — gets and puts are
within ~±25% of standard at every size, small-file gets are RTT-bound,
and small-file puts are buffered (apparent rates far above the line rate).
"The measurements ... vary widely" — hence median over seeds.
"""

from benchmarks.conftest import FULL, print_table, write_artifact
from repro.harness.experiments import FIG6_FILE_SIZES_KB, measure_ftp_rates

PAPER = {
    0.2: {"get_std": 8.75, "get_fo": 8.75, "put_std": 512.38, "put_fo": 536.05},
    1.3: {"get_std": 59.03, "get_fo": 59.03, "put_std": 2033.76, "put_fo": 2036.87},
    18.2: {"get_std": 90.41, "get_fo": 70.74, "put_std": 3846.13, "put_fo": 3890.42},
    144.9: {"get_std": 156.80, "get_fo": 138.35, "put_std": 219.52, "put_fo": 200.31},
    1738.1: {"get_std": 176.03, "get_fo": 171.72, "put_std": 168.07, "put_fo": 176.63},
}

SIZES = FIG6_FILE_SIZES_KB if FULL else FIG6_FILE_SIZES_KB[:4]
TRIALS = 5 if FULL else 3


def run_sweep():
    table = []
    for size_kb in SIZES:
        std = measure_ftp_rates(size_kb, replicated=False, trials=TRIALS, seed=1)
        fo = measure_ftp_rates(size_kb, replicated=True, trials=TRIALS, seed=1)
        table.append((size_kb, std, fo))
    return table


def test_bench_fig6_ftp_wan(benchmark):
    table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = []
    for size_kb, std, fo in table:
        paper = PAPER[size_kb]
        rows.append(
            (
                size_kb,
                f"{std['get_kb_s']:.1f}",
                f"{fo['get_kb_s']:.1f}",
                f"{paper['get_std']}/{paper['get_fo']}",
                f"{std['put_kb_s']:.1f}",
                f"{fo['put_kb_s']:.1f}",
                f"{paper['put_std']}/{paper['put_fo']}",
            )
        )
    print_table(
        "E5 / Fig 6: FTP rates over WAN (KB/s, median)",
        ["fileKB", "get-std", "get-fo", "paper-get", "put-std", "put-fo", "paper-put"],
        rows,
    )
    write_artifact(
        "fig6_ftp_wan", {"trials": TRIALS},
        [
            {"label": f"{mode} {size_kb}KB",
             "metrics": {"get_kb_s": res["get_kb_s"], "put_kb_s": res["put_kb_s"]}}
            for size_kb, std, fo in table
            for mode, res in (("standard", std), ("failover", fo))
        ],
    )
    for size_kb, std, fo in table:
        # The headline shape: failover ~ standard over a WAN.
        assert fo["get_kb_s"] > 0.6 * std["get_kb_s"], f"get diverged at {size_kb}KB"
        assert fo["put_kb_s"] > 0.6 * std["put_kb_s"], f"put diverged at {size_kb}KB"
    # Rates grow with file size for gets (RTT amortisation), as in the paper.
    gets = [std["get_kb_s"] for _, std, _ in table]
    assert gets[0] < gets[-1]
    # Small-file puts report buffered (apparently super-linear) rates.
    small_put = table[0][1]["put_kb_s"]
    small_get = table[0][1]["get_kb_s"]
    assert small_put > small_get * 5
