"""E6 — failover timeline (extension of the §5 analysis; no paper table).

The paper analyses the failover interval qualitatively: detection, IP
takeover, the router-ARP window ``T`` and TCP retransmission recovery.
This benchmark quantifies the client-visible stall as a function of the
detector timeout and the ARP-update latency, and verifies the stream is
byte-identical in every configuration.
"""

from benchmarks.conftest import FULL, print_table, write_artifact
from repro.harness.experiments import measure_failover

DETECTOR_TIMEOUTS = [0.020, 0.050, 0.200, 0.500] if FULL else [0.020, 0.200, 0.500]
ARP_DELAYS = [0.2e-3, 2e-3, 20e-3] if FULL else [0.2e-3, 20e-3]
STREAM = 1_500_000 if FULL else 800_000


def run_sweep():
    rows = []
    phases = {}
    for timeout in DETECTOR_TIMEOUTS:
        result = measure_failover(
            total_bytes=STREAM, crash_at=0.060, crash="primary",
            detector_timeout=timeout, seed=9, min_rto=0.05,
            record_traces=not phases,
        )
        assert result["intact"]
        phases = phases or result.get("phases") or {}
        rows.append(("detector", timeout, result["stall_s"]))
    for arp_delay in ARP_DELAYS:
        result = measure_failover(
            total_bytes=STREAM, crash_at=0.060, crash="primary",
            detector_timeout=0.020, client_arp_delay=arp_delay, seed=9,
            min_rto=0.05,
        )
        assert result["intact"]
        rows.append(("arp-window", arp_delay, result["stall_s"]))
    secondary = measure_failover(
        total_bytes=STREAM, crash_at=0.060, crash="secondary",
        detector_timeout=0.020, seed=9, min_rto=0.05,
    )
    assert secondary["intact"]
    rows.append(("secondary-crash", 0.020, secondary["stall_s"]))
    return rows, phases


def test_bench_failover_time(benchmark):
    rows, phases = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        "E6: client-visible stall vs recovery parameters (s)",
        ["knob", "value", "stall"],
        [(k, f"{v:.4f}", f"{s:.4f}") for k, v, s in rows],
    )
    write_artifact(
        "failover_time", {"bytes": STREAM, "crash_at": 0.060},
        [
            {"label": f"{knob}={value:g}", "metrics": {"stall_s": stall}}
            for knob, value, stall in rows
        ],
        phases=phases or None,
    )
    detector_rows = [(v, s) for k, v, s in rows if k == "detector"]
    # A slower detector means a longer stall once it dominates the RTO.
    assert detector_rows[-1][1] > detector_rows[0][1]
    # With a fast detector the stall is bounded by retransmission timing:
    # well under a second for every configuration here.
    fast = detector_rows[0][1]
    assert fast < 0.5
    # Secondary failure is cheaper than primary failure (no ARP window).
    secondary_stall = [s for k, _, s in rows if k == "secondary-crash"][0]
    assert secondary_stall <= detector_rows[0][1] + 0.25
