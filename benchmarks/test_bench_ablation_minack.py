"""E7 — ablation: min-ACK merging vs forwarding the primary's own ACK.

DESIGN.md calls out requirement 2 of §2 ("the primary server must not
acknowledge a client's TCP segment until it has received an acknowledgment
of that segment from the secondary server") as the safety property the
whole design rests on.  This ablation disables the min-ACK merge and shows
the paper's rule is not an optimisation but a correctness requirement:
without it, a single snoop loss at the secondary plus a primary crash
loses acknowledged client data.
"""

from benchmarks.conftest import print_table, write_artifact
from repro.harness.experiments import measure_minack_ablation


def run_ablation():
    return {
        "with-min-ack": measure_minack_ablation(ack_merging=True),
        "without-min-ack": measure_minack_ablation(ack_merging=False),
    }


def test_bench_ablation_minack(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = []
    for label, r in results.items():
        rows.append(
            (
                label,
                r["frame_dropped"],
                r["survivor_bytes"],
                r["survivor_intact"],
                r["client_ok"],
            )
        )
    print_table(
        "E7: min-ACK ablation (one snoop loss at S, then P crashes)",
        ["variant", "loss-injected", "survivor-bytes", "intact", "client-ok"],
        rows,
    )
    write_artifact(
        "ablation_minack", {},
        [
            {"label": label, "metrics": {
                "survivor_bytes": r["survivor_bytes"],
                "survivor_intact": int(r["survivor_intact"]),
                "client_ok": int(r["client_ok"])}}
            for label, r in results.items()
        ],
    )
    good = results["with-min-ack"]
    bad = results["without-min-ack"]
    assert good["frame_dropped"] and bad["frame_dropped"]
    # Paper's rule: the stream survives the crash intact.
    assert good["survivor_intact"] and good["client_ok"]
    # Ablated: acknowledged data is gone forever.
    assert not bad["survivor_intact"]
    assert not bad["client_ok"]
