"""Bench regression guard: compare a fresh BENCH artifact to the baseline.

Usage::

    python benchmarks/bench_guard.py --fresh artifacts/BENCH_sim_engine.json

Every throughput metric (``*_per_sec``) in the fresh artifact must be at
least ``(1 - tolerance)`` times its committed-baseline counterpart;
anything slower fails the guard.  Dimensionless metrics with an explicit
floor (currently ``dispose:ratio / wheel_over_heap``, the wheel-vs-heap
acceptance bar) are checked against that floor rather than the baseline,
so they stay meaningful across machines of different absolute speed.

The tolerance defaults to 10% and can be overridden with ``--tolerance``
or the ``REPRO_BENCH_TOLERANCE`` environment variable (a fraction, e.g.
``0.10``).
"""

import argparse
import json
import os
import sys
from pathlib import Path

BASELINE_DIR = Path(__file__).parent / "baseline"
DEFAULT_BASELINE = BASELINE_DIR / "BENCH_sim_engine.json"
DEFAULT_TOLERANCE = 0.10

# label -> metric -> hard floor, compared directly (machine-independent).
RATIO_FLOORS = {
    "dispose:ratio": {"wheel_over_heap": 2.0},
    # Tracing at sample-rate 0 may cost at most 5% of untraced
    # throughput (the obs-overhead acceptance bar).
    "overhead:ratio": {"rate0_over_off": 0.95},
    # A blind RST sweep against the hardened bridge (crash + takeover
    # included) keeps at least 70% of the attack-free cell's goodput
    # per host-CPU second — spoofed probes must never amplify.
    "adversary:ratio": {"sweep_over_off": 0.70},
    # E14's flagship cell: the DNS-flip-with-stale-pools path must show
    # at least 1.5x the bridge path's p99 client-visible downtime (the
    # measured seed-1 value is ~4.2x) — transparent failover has to win.
    "clients:ratio": {"dns_over_bridge_p99": 1.5},
}


def default_baseline(fresh_path):
    """Committed baseline matching the fresh artifact's filename, if any.

    ``--fresh artifacts/BENCH_obs_overhead.json`` compares against
    ``baseline/BENCH_obs_overhead.json`` without needing ``--baseline``;
    unmatched names keep the historical sim-engine default.
    """
    candidate = BASELINE_DIR / Path(fresh_path).name
    return candidate if candidate.exists() else DEFAULT_BASELINE


def load_metrics(path):
    doc = json.loads(Path(path).read_text())
    out = {}
    for result in doc.get("results", []):
        for metric, value in result.get("metrics", {}).items():
            out[(result["label"], metric)] = float(value)
    return out


def check(baseline_path, fresh_path, tolerance):
    baseline = load_metrics(baseline_path)
    fresh = load_metrics(fresh_path)
    failures = []
    rows = []
    for (label, metric), base_value in sorted(baseline.items()):
        fresh_value = fresh.get((label, metric))
        if fresh_value is None:
            failures.append(f"{label}/{metric}: missing from fresh artifact")
            continue
        floor = RATIO_FLOORS.get(label, {}).get(metric)
        if floor is not None:
            ok = fresh_value >= floor
            verdict = f">= {floor:g} (hard floor)"
        elif metric.endswith("_per_sec"):
            floor = (1.0 - tolerance) * base_value
            ok = fresh_value >= floor
            verdict = f">= {floor:,.0f} ({tolerance:.0%} below baseline {base_value:,.0f})"
        else:
            continue  # informational metric (e.g. compaction counts)
        rows.append((label, metric, fresh_value, verdict, ok))
        if not ok:
            failures.append(
                f"{label}/{metric}: {fresh_value:,.2f} fails {verdict}"
            )
    width = max((len(f"{label}/{metric}") for label, metric, *_ in rows), default=0)
    for label, metric, fresh_value, verdict, ok in rows:
        flag = "ok  " if ok else "FAIL"
        print(f"[guard] {flag} {f'{label}/{metric}':<{width}} {fresh_value:>14,.2f}  {verdict}")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", required=True, help="freshly produced BENCH json")
    parser.add_argument("--baseline", default=None,
                        help="baseline artifact (default: the committed"
                             " baseline with the fresh file's name, falling"
                             " back to BENCH_sim_engine.json)")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_BENCH_TOLERANCE", DEFAULT_TOLERANCE)),
        help="allowed fractional throughput regression (default 0.10)",
    )
    args = parser.parse_args(argv)
    if args.baseline is None:
        args.baseline = str(default_baseline(args.fresh))
        print(f"[guard] baseline: {args.baseline}")
    failures = check(args.baseline, args.fresh, args.tolerance)
    if failures:
        for failure in failures:
            print(f"[guard] REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("[guard] all throughput metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
