"""E2 — Figure 3: client-to-server send time vs message size.

Paper: median send() time for 64 B – 1 MB messages, standard TCP vs TCP
Failover.  Two properties define the figure's shape:

* messages up to ~32 KB are flattened by the 64 KB send buffer ("the send
  call returns when the application has passed the last byte to the
  stack");
* beyond the buffer the time grows linearly with size, with the failover
  curve above the standard one.
"""

from benchmarks.conftest import FULL, fig_sizes, print_table, write_artifact
from repro.harness.experiments import FIG3_SIZES, measure_send_time

SIZES = fig_sizes(
    FIG3_SIZES,
    [64, 1024, 8 * 1024, 32 * 1024, 128 * 1024, 512 * 1024, 1024 * 1024],
)
TRIALS = 9 if FULL else 5


def run_sweep():
    series = {}
    for replicated in (False, True):
        label = "failover" if replicated else "standard"
        series[label] = [
            (size, measure_send_time(size, replicated=replicated, trials=TRIALS))
            for size in SIZES
        ]
    return series


def test_bench_fig3_send_time(benchmark):
    series = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = []
    bench_rows, bench_stats = [], {}
    for (size, std), (_, fo) in zip(series["standard"], series["failover"]):
        rows.append(
            (
                f"{size//1024}K" if size >= 1024 else f"{size}B",
                f"{std.median * 1e6:.0f}",
                f"{std.p99 * 1e6:.0f}",
                f"{fo.median * 1e6:.0f}",
                f"{fo.p99 * 1e6:.0f}",
                f"{fo.median / std.median:.2f}x",
            )
        )
        for mode, stats in (("standard", std), ("failover", fo)):
            label = f"{mode} {size}B"
            bench_rows.append(
                {"label": label, "metrics": {"median_us": stats.median * 1e6}}
            )
            bench_stats[label] = stats.as_dict()
    print_table(
        "E2 / Fig 3: client->server send time (us, median)",
        ["size", "standard", "std-p99", "failover", "fo-p99", "ratio"],
        rows,
    )
    write_artifact("fig3_send_time", {"trials": TRIALS},
                   bench_rows, stats=bench_stats)
    std = dict(series["standard"])
    fo = dict(series["failover"])

    def med(d, size):
        return d[size].median

    small, buffered, large = 64, 32 * 1024, 1024 * 1024
    # Send-buffer flattening: 32 KB costs nowhere near 512x the 64 B time.
    assert med(std, buffered) < med(std, small) * 40
    # Beyond the buffer the growth is roughly linear (1 MB ~ 2x 512 KB).
    half = 512 * 1024
    assert 1.5 < med(std, large) / med(std, half) < 3.0
    # Failover sits above standard for large messages.
    assert med(fo, large) > med(std, large)
