"""Tracing-overhead guard: watching must be (nearly) free.

Four capacity cells through the same seeded storm, varying only the
span sample rate:

* ``off``   — tracing absent (the production default);
* ``rate0`` — a tracer threaded through every constructor but sampling
  at 0: each hot path pays exactly one ``enabled`` branch.  The
  acceptance bar lives here: ≥ 95% of the untraced cell's event
  throughput (median ratio over the trials);
* ``rate1pct`` — the always-on operational setting;
* ``rate100pct`` — every trace sampled, the worst case.

Throughput is simulator events per host-CPU second — the denominator
every other bench in this suite uses — so the committed baseline makes
regressions in the instrumentation (a forgotten guard, an eager
allocation) trip the guard even when the sim itself got faster.
"""

import statistics
import time

from benchmarks.conftest import FULL, print_table, write_artifact
from repro.cluster import run_capacity

SESSIONS = 96 if FULL else 24
TRIALS = 3  # best-of-N per cell: the guard compares these, so damp noise

#: Hard floor on rate-0 throughput relative to tracing-off (median of
#: per-trial ratios).  The ISSUE's acceptance bar: ≤ 5% regression.
MIN_RATE0_RATIO = 0.95

CELLS = (
    ("off", None),
    ("rate0", 0.0),
    ("rate1pct", 0.01),
    ("rate100pct", 1.0),
)


def run_cell(sample_rate):
    kwargs = dict(
        shards=2, clients=2, sessions=SESSIONS, seed=11,
        ramp=0.2, hold_for=0.4, storm_at=0.3, storm_fraction=0.5,
    )
    if sample_rate is not None:
        kwargs["span_sample_rate"] = sample_rate
    start = time.perf_counter()  # replint: allow(wallclock) -- benchmark harness measures host-CPU throughput
    result = run_capacity(**kwargs)
    elapsed = time.perf_counter() - start  # replint: allow(wallclock) -- benchmark harness measures host-CPU throughput
    assert result.stats.sessions_failed == 0
    return result.fleet.sim.events_processed / elapsed


def test_bench_obs_overhead(benchmark):
    def experiment():
        out = {}
        ratios = []
        for _trial in range(TRIALS):
            rates = {}
            for label, sample_rate in CELLS:
                rate = run_cell(sample_rate)
                rates[label] = rate
                key = f"{label}_events_per_sec"
                out[key] = max(rate, out.get(key, 0.0))
            ratios.append(rates["rate0"] / rates["off"])
        out["rate0_over_off"] = statistics.median(ratios)
        return out

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(
        "Span-tracing overhead (capacity storm cell)",
        ["cell", "events/s", "vs off"],
        [
            (
                label,
                f"{results[f'{label}_events_per_sec']:.0f}",
                f"{results[f'{label}_events_per_sec'] / results['off_events_per_sec']:.3f}",
            )
            for label, _rate in CELLS
        ],
    )
    write_artifact(
        "obs_overhead",
        {"sessions": SESSIONS, "shards": 2, "clients": 2, "seed": 11},
        [
            {
                "label": f"capacity:{label}",
                "metrics": {
                    "events_per_sec": results[f"{label}_events_per_sec"]
                },
            }
            for label, _rate in CELLS
        ]
        + [
            {
                "label": "overhead:ratio",
                "metrics": {"rate0_over_off": results["rate0_over_off"]},
            }
        ],
    )
    assert results["rate0_over_off"] >= MIN_RATE0_RATIO, results
