"""Simulator scheduling-throughput guard, per scheduler backend.

The cluster capacity runs push hundreds of thousands of timers through
one ``Simulator``; most retransmission timers are cancelled by the ACK
long before their deadline.  This benchmark drives three synthetic loads
against **both** scheduler backends (the lazy-compaction heap and the
hierarchical timer wheel):

* ``fire`` — a plain schedule/fire loop through the full Simulator API;
* ``churn`` — schedule, cancel 95%, fire the rest (compaction path);
* ``dispose`` — the cancellation-disposal cell, measured at the
  EventQueue level: a deep live "floor" of far-future timers plus a
  near-term churn population that is 95% cancelled, then drained.  This
  isolates the structural difference between the backends: the heap pays
  a full-depth sift per dead entry popped at peek, the wheel drops dead
  entries in bulk list-filter passes during slot scans.  The acceptance
  bar — wheel ≥ 2× heap — is asserted on this cell (median of 3 trials).

The drain bound deliberately leaves a live churn tail: a peek past the
last churn entry would force the wheel to cascade the entire floor,
which is a different (and unrepresentative) workload.

Floors are deliberately loose (~5-10x below observed) so they only trip
on algorithmic regressions, not machine noise.
"""

import itertools
import statistics
import time

from benchmarks.conftest import FULL, print_table, write_artifact
from repro.sim.engine import HeapEventQueue, Simulator, Timer
from repro.sim.wheel import TimerWheel

EVENTS = 200_000 if FULL else 50_000
DISPOSE_FLOOR = 500_000 if FULL else 200_000
DISPOSE_CHURN = 100_000 if FULL else 50_000
TRIALS = 3  # best-of-N per cell: the guard compares these, so damp noise

MIN_FIRE_RATE = 100_000.0  # events/sec, schedule+fire
MIN_CHURN_RATE = 50_000.0  # timers/sec, schedule+cancel-heavy
MIN_DISPOSE_RATIO = 2.0  # wheel vs heap on the dispose cell

BACKENDS = ("heap", "wheel")


def _noop():
    return None


def _make_queue(backend):
    return HeapEventQueue() if backend == "heap" else TimerWheel()


def run_fire_loop(backend):
    """Schedule EVENTS timers and fire them all."""
    sim = Simulator(scheduler=backend)
    for i in range(EVENTS):
        sim.schedule(float(i) * 1e-6, _noop)
    sim.run()
    assert sim.events_processed == EVENTS
    return sim


def run_churn_loop(backend):
    """Schedule EVENTS timers, cancel 95% of them, fire the rest.

    Without lazy compaction the backend holds every dead entry until
    run() pops it; with compaction storage shrinks as cancellations
    dominate.
    """
    sim = Simulator(scheduler=backend)
    live = 0
    timers = []
    for i in range(EVENTS):
        t = sim.schedule(1.0 + float(i) * 1e-6, _noop)
        if i % 20 == 0:
            live += 1
        else:
            timers.append(t)
    for t in timers:
        t.cancel()
    assert sim.pending_events < EVENTS // 2, "compaction did not shrink storage"
    sim.run()
    assert sim.events_processed == live
    return sim


def run_dispose_cell(backend):
    """Cancel-and-dispose throughput at the EventQueue level.

    Returns timers/sec over the timed region (cancel 95% of the churn
    population, then drain every live churn timer below the bound).
    """
    queue = _make_queue(backend)
    order = itertools.count()
    # Far-future live floor: full-depth heap sifts per pop; never
    # scanned by the wheel.  Also keeps the dead ratio below the
    # compaction threshold so neither backend compacts mid-cell.
    for i in range(DISPOSE_FLOOR):
        deadline = 3600.0 + i * 1e-3
        queue.push((deadline, next(order), Timer(deadline, _noop, ())))
    entries = []
    now = 0.0
    for i in range(DISPOSE_CHURN):
        if i % 8 == 0:
            now += 0.001
        deadline = now + 0.2
        entry = (deadline, next(order), Timer(deadline, _noop, ()))
        queue.push(entry)
        entries.append(entry)
    bound = entries[-1][0] - 0.05  # live tail: never peek past the churn
    start = time.perf_counter()  # replint: allow(wallclock) -- benchmark harness measures host-CPU throughput
    for i, entry in enumerate(entries):
        if i % 20 != 0:
            entry[2]._cancelled = True
            queue.on_cancel()
    while True:
        head = queue.peek()
        if head is None or head[0] > bound:
            break
        queue.pop()
    elapsed = time.perf_counter() - start  # replint: allow(wallclock) -- benchmark harness measures host-CPU throughput
    assert queue.compactions == 0, "floor should keep the dead ratio subcritical"
    return DISPOSE_CHURN / elapsed


def test_bench_sim_engine(benchmark):
    def timed_rate(loop, backend):
        start = time.perf_counter()  # replint: allow(wallclock) -- benchmark harness measures host-CPU throughput
        sim = loop(backend)
        return EVENTS / (time.perf_counter() - start), sim  # replint: allow(wallclock) -- benchmark harness measures host-CPU throughput

    def experiment():
        out = {}
        for backend in BACKENDS:
            out[f"{backend}_fire_rate"] = max(
                timed_rate(run_fire_loop, backend)[0] for _ in range(TRIALS)
            )
            churn = [timed_rate(run_churn_loop, backend) for _ in range(TRIALS)]
            out[f"{backend}_churn_rate"] = max(rate for rate, _sim in churn)
            out[f"{backend}_compactions"] = churn[0][1].compactions
        ratios = []
        for _trial in range(TRIALS):
            heap_rate = run_dispose_cell("heap")
            wheel_rate = run_dispose_cell("wheel")
            out["heap_dispose_rate"] = max(heap_rate, out.get("heap_dispose_rate", 0.0))
            out["wheel_dispose_rate"] = max(
                wheel_rate, out.get("wheel_dispose_rate", 0.0)
            )
            ratios.append(wheel_rate / heap_rate)
        out["dispose_ratio"] = statistics.median(ratios)
        return out

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(
        "Simulator scheduling throughput (per backend)",
        ["load", "heap (ops/s)", "wheel (ops/s)", "floor"],
        [
            (
                "schedule+fire",
                f"{results['heap_fire_rate']:.0f}",
                f"{results['wheel_fire_rate']:.0f}",
                f"{MIN_FIRE_RATE:.0f}",
            ),
            (
                "95% churn",
                f"{results['heap_churn_rate']:.0f}",
                f"{results['wheel_churn_rate']:.0f}",
                f"{MIN_CHURN_RATE:.0f}",
            ),
            (
                "dispose cell",
                f"{results['heap_dispose_rate']:.0f}",
                f"{results['wheel_dispose_rate']:.0f}",
                f"wheel>={MIN_DISPOSE_RATIO:.0f}x heap",
            ),
        ],
    )
    write_artifact(
        "sim_engine",
        {
            "events": EVENTS,
            "dispose_floor": DISPOSE_FLOOR,
            "dispose_churn": DISPOSE_CHURN,
        },
        [
            {
                "label": f"fire:{backend}",
                "metrics": {"events_per_sec": results[f"{backend}_fire_rate"]},
            }
            for backend in BACKENDS
        ]
        + [
            {
                "label": f"churn:{backend}",
                "metrics": {
                    "timers_per_sec": results[f"{backend}_churn_rate"],
                    "compactions": float(results[f"{backend}_compactions"]),
                },
            }
            for backend in BACKENDS
        ]
        + [
            {
                "label": f"dispose:{backend}",
                "metrics": {"timers_per_sec": results[f"{backend}_dispose_rate"]},
            }
            for backend in BACKENDS
        ]
        + [
            {
                "label": "dispose:ratio",
                "metrics": {"wheel_over_heap": results["dispose_ratio"]},
            }
        ],
    )
    for backend in BACKENDS:
        assert results[f"{backend}_compactions"] >= 1, results
        assert results[f"{backend}_fire_rate"] > MIN_FIRE_RATE, results
        assert results[f"{backend}_churn_rate"] > MIN_CHURN_RATE, results
    assert results["dispose_ratio"] >= MIN_DISPOSE_RATIO, results
