"""Simulator scheduling-throughput guard.

The cluster capacity runs push hundreds of thousands of timers through
one ``Simulator``; most retransmission timers are cancelled by the ACK
long before their deadline.  This benchmark drives two synthetic loads —
a plain schedule/fire loop and a churn loop where 95% of timers are
cancelled — and asserts the scheduler sustains a floor throughput, so a
regression in the hot loop (or in the lazy heap compaction that keeps
cancelled entries from dominating) fails the build.
"""

import time

from benchmarks.conftest import FULL, print_table, write_artifact
from repro.sim.engine import Simulator

EVENTS = 200_000 if FULL else 50_000
# Floors are deliberately loose (~5-10x below observed) so they only trip
# on algorithmic regressions, not machine noise.
MIN_FIRE_RATE = 100_000.0  # events/sec, schedule+fire
MIN_CHURN_RATE = 50_000.0  # timers/sec, schedule+cancel-heavy


def _noop():
    return None


def run_fire_loop():
    """Schedule EVENTS timers and fire them all."""
    sim = Simulator()
    for i in range(EVENTS):
        sim.schedule(float(i) * 1e-6, _noop)
    sim.run()
    assert sim.events_processed == EVENTS
    return sim


def run_churn_loop():
    """Schedule EVENTS timers, cancel 95% of them, fire the rest.

    Without lazy compaction the heap holds every dead entry until run()
    pops it; with compaction the queue shrinks as cancellations dominate.
    """
    sim = Simulator()
    live = 0
    timers = []
    for i in range(EVENTS):
        t = sim.schedule(1.0 + float(i) * 1e-6, _noop)
        if i % 20 == 0:
            live += 1
        else:
            timers.append(t)
    for t in timers:
        t.cancel()
    assert sim.pending_events < EVENTS // 2, "compaction did not shrink the heap"
    sim.run()
    assert sim.events_processed == live
    return sim


def test_bench_sim_engine(benchmark):
    def experiment():
        out = {}
        start = time.perf_counter()  # replint: allow(wallclock) -- benchmark harness measures host-CPU throughput
        run_fire_loop()
        out["fire_rate"] = EVENTS / (time.perf_counter() - start)  # replint: allow(wallclock) -- benchmark harness measures host-CPU throughput
        start = time.perf_counter()  # replint: allow(wallclock) -- benchmark harness measures host-CPU throughput
        churn_sim = run_churn_loop()
        out["churn_rate"] = EVENTS / (time.perf_counter() - start)  # replint: allow(wallclock) -- benchmark harness measures host-CPU throughput
        out["compactions"] = churn_sim.compactions
        return out

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(
        "Simulator scheduling throughput",
        ["load", "rate (ops/s)", "floor"],
        [
            ("schedule+fire", f"{results['fire_rate']:.0f}", f"{MIN_FIRE_RATE:.0f}"),
            ("95% churn", f"{results['churn_rate']:.0f}", f"{MIN_CHURN_RATE:.0f}"),
        ],
    )
    write_artifact(
        "sim_engine",
        {"events": EVENTS},
        [
            {"label": "fire", "metrics": {"events_per_sec": results["fire_rate"]}},
            {
                "label": "churn",
                "metrics": {
                    "timers_per_sec": results["churn_rate"],
                    "compactions": float(results["compactions"]),
                },
            },
        ],
    )
    assert results["compactions"] >= 1
    assert results["fire_rate"] > MIN_FIRE_RATE, results
    assert results["churn_rate"] > MIN_CHURN_RATE, results
