"""E8 — ablation: min-window merging vs advertising the primary's window.

§3.2: "choosing the smaller of the two window sizes adapts the client's
send rate to the slower of the two servers and, thus, reduces the risk of
message loss."  With a slow secondary (small receive buffer, paced
consumer), disabling the merge lets the client overrun the secondary —
visible as trimmed bytes and retransmission stalls.  Unlike the min-ACK
rule this one is a performance property, not a safety property: the
stream still completes, just worse.
"""

from benchmarks.conftest import print_table, write_artifact
from repro.harness.experiments import measure_minwindow_ablation


def run_ablation():
    return {
        "with-min-window": measure_minwindow_ablation(window_merging=True),
        "without-min-window": measure_minwindow_ablation(window_merging=False),
    }


def test_bench_ablation_minwindow(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    rows = []
    for label, r in results.items():
        rows.append(
            (
                label,
                f"{r['completion_s']:.3f}",
                r["secondary_trimmed"],
                r["intact"],
            )
        )
    print_table(
        "E8: min-window ablation (slow secondary, 400 KB upload)",
        ["variant", "completion-s", "S-bytes-trimmed", "intact"],
        rows,
    )
    write_artifact(
        "ablation_minwindow", {},
        [
            {"label": label, "metrics": {
                "completion_s": r["completion_s"],
                "secondary_trimmed": r["secondary_trimmed"]}}
            for label, r in results.items()
        ],
    )
    good = results["with-min-window"]
    bad = results["without-min-window"]
    # Both complete (min-ACK still protects correctness)...
    assert good["intact"] and bad["intact"]
    # ...but the merge prevents secondary overruns entirely.
    assert good["secondary_trimmed"] == 0
    assert bad["secondary_trimmed"] > 0
