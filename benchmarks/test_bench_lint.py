"""Linter wall-time guard: the semantic plane must stay interactive.

One full ``--semantic`` pass over ``src/`` — syntactic rules, the
interprocedural dataflow rules (seq-taint, checksum-staleness,
mutation-escape) and the protocol model checker — timed end to end,
with the per-rule split recorded so a regression names its culprit.
The committed artifact makes lint-time trajectories visible across
commits the same way the throughput benches do; project-summary
fixpoints are charged under ``<rule>:project``.
"""

import time

from benchmarks.conftest import print_table, write_artifact
from repro.analysis.engine import LintEngine

PATHS = ("src",)

#: Hard ceiling on one semantic pass.  The interactive budget: a lint
#: that takes minutes stops being run before commits.
MAX_WALL_S = 120.0


def run_pass():
    engine = LintEngine(semantic=True)
    start = time.perf_counter()  # replint: allow(wallclock) -- benchmark harness measures host wall time
    violations = engine.lint_paths(list(PATHS))
    elapsed = time.perf_counter() - start  # replint: allow(wallclock) -- benchmark harness measures host wall time
    assert violations == [], [str(v) for v in violations]
    return engine, elapsed


def test_bench_lint(benchmark):
    def experiment():
        engine, elapsed = run_pass()
        out = {
            "wall_s": elapsed,
            "files": float(engine.files_checked),
        }
        for name, seconds in engine.rule_seconds.items():
            out[f"rule:{name}"] = seconds
        return out

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rules = sorted(
        (k[len("rule:"):], v) for k, v in results.items()
        if k.startswith("rule:")
    )
    print_table(
        "Semantic lint pass (src/)",
        ["rule", "seconds"],
        [("TOTAL", f"{results['wall_s']:.3f}")]
        + [(name, f"{seconds:.3f}") for name, seconds in rules],
    )
    write_artifact(
        "lint",
        {"paths": "src", "semantic": True},
        [
            {
                "label": "lint total",
                "metrics": {
                    "wall_s": results["wall_s"],
                    "files": results["files"],
                },
            }
        ]
        + [
            {"label": f"rule {name}", "metrics": {"wall_s": seconds}}
            for name, seconds in rules
        ],
    )
    assert results["wall_s"] <= MAX_WALL_S, results
