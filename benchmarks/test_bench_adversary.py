"""Adversarial-plane overhead guard: hardening must not tax the victim.

Two bridge cells from the attack matrix, identical seed and stream:

* ``off``       — the attacker is attached but silent (strategy
  ``none``): the price of carrying the adversarial plane at all;
* ``rst-sweep`` — a full 64-probe blind RST sweep plus the usual
  mid-transfer crash and takeover: the hardened worst case, where every
  spoofed segment is validated, challenge ACKs are rate-limited, and
  the transfer still completes.

The guarded number is the host-CPU throughput ratio between them
(median over the trials).  Before RFC 5961 hardening a sweep could
stall the transfer into RTO recovery — or kill it — so the ratio is
the regression bar proving attacks stay an O(probes) annoyance rather
than an amplifier: see ``RATIO_FLOORS['adversary:ratio']`` in
``bench_guard.py``.
"""

import statistics
import time

from benchmarks.conftest import FULL, print_table, write_artifact
from repro.adversary import AttackSpec, run_attack_cell

SIZE = 2_000_000 if FULL else 1_000_000
SEED = 1
TRIALS = 3  # the guard compares medians of per-trial ratios: damp noise

#: Hard floor on rst-sweep throughput relative to attack-off.  The
#: sweep cell pays for segment validation and challenge ACKs but its
#: crash also ends replication at 45% of the stream, so the ratio sits
#: near (even above) 1.0 when the hardening is O(probes); it collapses
#: if spoofed segments ever stall the transfer into RTO recovery.
MIN_SWEEP_RATIO = 0.70

CELLS = (
    ("off", AttackSpec("none", "client", "early", seed=SEED, size=SIZE)),
    ("rst-sweep", AttackSpec("rst-sweep", "service", "early", seed=SEED, size=SIZE)),
)


def run_cell(spec):
    start = time.perf_counter()  # replint: allow(wallclock) -- benchmark harness measures host-CPU cost
    result = run_attack_cell(spec)
    elapsed = time.perf_counter() - start  # replint: allow(wallclock) -- benchmark harness measures host-CPU cost
    assert result.ok, result.describe()
    assert result.delivered == SIZE
    return result.delivered / elapsed


def test_bench_adversary(benchmark):
    # Populate the clean-duration anchor outside the timed region.
    run_attack_cell(CELLS[1][1])

    def experiment():
        out = {}
        ratios = []
        for _trial in range(TRIALS):
            rates = {}
            for label, spec in CELLS:
                rate = run_cell(spec)
                rates[label] = rate
                key = f"{label}_bytes_per_host_sec"
                out[key] = max(rate, out.get(key, 0.0))
            ratios.append(rates["rst-sweep"] / rates["off"])
        out["sweep_over_off"] = statistics.median(ratios)
        return out

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(
        "Adversarial-plane overhead (bridge cell)",
        ["cell", "bytes/host-s", "vs off"],
        [
            (
                label,
                f"{results[f'{label}_bytes_per_host_sec']:.0f}",
                f"{results[f'{label}_bytes_per_host_sec'] / results['off_bytes_per_host_sec']:.3f}",
            )
            for label, _spec in CELLS
        ],
    )
    write_artifact(
        "adversary",
        {"size": SIZE, "seed": SEED, "trials": TRIALS},
        [
            {
                "label": f"adversary:{label}",
                "metrics": {
                    "bytes_per_host_sec": results[f"{label}_bytes_per_host_sec"]
                },
            }
            for label, _spec in CELLS
        ]
        + [
            {
                "label": "adversary:ratio",
                "metrics": {"sweep_over_off": results["sweep_over_off"]},
            }
        ],
    )
    assert results["sweep_over_off"] >= MIN_SWEEP_RATIO, results
