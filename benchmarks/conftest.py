"""Shared benchmark configuration.

Set ``REPRO_FULL=1`` to run the paper's full parameters (100 MB streams,
all 15 Fig. 3/4 sizes, 100-trial connection setup).  The default is a
scaled run that preserves every reported shape while finishing quickly.
"""

import os

FULL = os.environ.get("REPRO_FULL", "0") == "1"


def fig_sizes(full_sizes, quick_sizes):
    return full_sizes if FULL else quick_sizes


def print_table(title, header, rows):
    print()
    print(f"== {title} ==")
    print(" | ".join(header))
    print("-+-".join("-" * len(h) for h in header))
    for row in rows:
        print(" | ".join(str(c).rjust(len(h)) for c, h in zip(row, header)))
