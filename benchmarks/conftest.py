"""Shared benchmark configuration.

Set ``REPRO_FULL=1`` to run the paper's full parameters (100 MB streams,
all 15 Fig. 3/4 sizes, 100-trial connection setup).  The default is a
scaled run that preserves every reported shape while finishing quickly.
"""

import os

from repro.obs import bench as obs_bench

FULL = os.environ.get("REPRO_FULL", "0") == "1"


def write_artifact(name, params, results, stats=None, phases=None):
    """Every bench run leaves a machine-readable ``BENCH_<name>.json``
    behind (in ``$REPRO_BENCH_DIR``, or the working directory) so perf
    trajectories can be compared across commits."""
    params = dict(params, full=FULL)
    path = obs_bench.write_bench_artifact(
        name, params, results, stats=stats, phases=phases
    )
    print(f"[bench] wrote {path}")
    return path


def fig_sizes(full_sizes, quick_sizes):
    return full_sizes if FULL else quick_sizes


def print_table(title, header, rows):
    print()
    print(f"== {title} ==")
    print(" | ".join(header))
    print("-+-".join("-" * len(h) for h in header))
    for row in rows:
        print(" | ".join(str(c).rjust(len(h)) for c, h in zip(row, header)))
