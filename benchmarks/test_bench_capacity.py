"""E12: fleet capacity through a failover storm.

Sweeps shard count and offered load over the sharded fleet, then runs
the flagship acceptance cell — 1000 concurrent closed-loop sessions
across 8 shards, a storm killing 25% of the primaries mid-run — and
asserts the cluster plane's contract: nobody outside the killed shards
notices, the invariant checker stays silent, and the same seed yields a
byte-identical BENCH payload.

Latency windows come from sim-time samples, so every number here is a
pure function of the seed (no wallclock pragmas needed).
"""

import json

from benchmarks.conftest import FULL, print_table, write_artifact
from repro.cluster import capacity_bench_rows, run_capacity

# Shard sweep at fixed load; load sweep at fixed shard count.
SHARD_POINTS = (2, 4, 8, 16) if FULL else (2, 4, 8)
SWEEP_SESSIONS = 256 if FULL else 96
LOAD_POINTS = (128, 512, 1000) if FULL else (64, 192, 384)
LOAD_SHARDS = 8

# The acceptance cell runs at full scale regardless of REPRO_FULL: the
# whole point is >= 1000 concurrent connections riding out the storm.
STORM_SESSIONS = 1000
STORM_SHARDS = 8
STORM_CLIENTS = 8
STORM_SEED = 5


def _cell(shards, sessions, seed, clients=4, **overrides):
    result = run_capacity(
        shards=shards, clients=clients, sessions=sessions, seed=seed,
        **overrides,
    )
    assert result.stats.sessions_failed == 0, result.stats.failures
    assert result.stats.corrupt_replies == 0
    assert result.misplaced_failures() == []
    assert result.invariants_ok(), result.checker.report()
    return result


def _row(label, result):
    windows = result.latency_windows()
    return {
        "label": label,
        "metrics": {
            "sessions": result.stats.sessions_started,
            "concurrent_at_storm": result.concurrent_at_storm,
            "connections_per_s": round(result.connections_per_s(), 3),
            "goodput_bytes_per_s": round(result.goodput_bytes_per_s(), 3),
            "pre_p99_ms": round(windows["pre_storm"].p99 * 1e3, 3),
            "during_p99_ms": round(windows["during_storm"].p99 * 1e3, 3),
            "post_p99_ms": round(windows["post_storm"].p99 * 1e3, 3),
            "shards_killed": len(result.killed),
        },
    }


def test_bench_capacity(benchmark):
    def experiment():
        rows = []
        for shards in SHARD_POINTS:
            result = _cell(shards, SWEEP_SESSIONS, seed=40 + shards)
            rows.append((f"shards={shards}", _row(f"shards {shards}", result)))
        for sessions in LOAD_POINTS:
            result = _cell(LOAD_SHARDS, sessions, seed=60 + sessions)
            rows.append(
                (f"sessions={sessions}", _row(f"load {sessions}", result))
            )
        storm = _cell(
            STORM_SHARDS, STORM_SESSIONS, seed=STORM_SEED,
            clients=STORM_CLIENTS, ramp=0.6, hold_for=2.0,
        )
        rows.append(("storm-1000", _row("storm 1000x8", storm)))
        return rows, storm

    (rows, storm) = benchmark.pedantic(experiment, rounds=1, iterations=1)

    # --- the acceptance cell's contract -------------------------------
    assert storm.concurrent_at_storm >= 1000
    assert len(storm.fleet.shards) == 8
    assert len(storm.killed) == 2  # 25% of 8 primaries
    assert storm.fleet.failed_over_shards() == storm.killed
    populations = storm.shard_populations()
    assert sum(populations.values()) == STORM_SESSIONS
    windows = storm.latency_windows()
    # The storm's stall (detection + takeover + client RTO) is visible in
    # the during-window tail, and the fleet settles back down after it.
    assert windows["during_storm"].maximum > windows["pre_storm"].p99
    assert windows["post_storm"].p99 < windows["during_storm"].maximum

    # --- same seed, byte-identical payload ----------------------------
    small = dict(shards=2, clients=2, sessions=12, ramp=0.1, hold_for=0.6,
                 storm_at=0.3, storm_fraction=0.5)
    once = json.dumps(
        capacity_bench_rows(run_capacity(seed=7, **small)), sort_keys=True
    )
    again = json.dumps(
        capacity_bench_rows(run_capacity(seed=7, **small)), sort_keys=True
    )
    assert once == again

    print_table(
        "E12: capacity sweep + 25% failover storm",
        ["cell", "conns/s", "goodput B/s", "pre p99", "during p99", "post p99"],
        [
            (
                label,
                f"{row['metrics']['connections_per_s']:.1f}",
                f"{row['metrics']['goodput_bytes_per_s']:.0f}",
                f"{row['metrics']['pre_p99_ms']:.2f}ms",
                f"{row['metrics']['during_p99_ms']:.2f}ms",
                f"{row['metrics']['post_p99_ms']:.2f}ms",
            )
            for label, row in rows
        ],
    )
    write_artifact(
        "capacity",
        {
            "sweep_sessions": SWEEP_SESSIONS,
            "storm_sessions": STORM_SESSIONS,
            "storm_shards": STORM_SHARDS,
            "storm_seed": STORM_SEED,
        },
        [row for _label, row in rows],
        stats={label: w.as_dict() for label, w in windows.items()},
    )
