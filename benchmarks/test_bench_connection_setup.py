"""E1 — connection setup time (§9, text table).

Paper: standard TCP median 294 µs / max 603 µs; TCP Failover median
505 µs / max 1193 µs (warm ARP caches).
"""

from benchmarks.conftest import FULL, print_table, write_artifact
from repro.harness.experiments import measure_connection_setup

PAPER = {
    "standard": {"median_us": 294, "max_us": 603},
    "failover": {"median_us": 505, "max_us": 1193},
}

TRIALS = 100 if FULL else 60


def run_experiment():
    return {
        "standard": measure_connection_setup(replicated=False, trials=TRIALS),
        "failover": measure_connection_setup(replicated=True, trials=TRIALS),
    }


def test_bench_connection_setup(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for mode in ("standard", "failover"):
        stats = results[mode]
        rows.append(
            (
                mode,
                f"{stats.median * 1e6:.0f}",
                f"{stats.p99 * 1e6:.0f}",
                f"{stats.maximum * 1e6:.0f}",
                f"{stats.stddev * 1e6:.0f}",
                PAPER[mode]["median_us"],
                PAPER[mode]["max_us"],
            )
        )
    print_table(
        "E1: connection setup time (us)",
        ["mode", "median", "p99", "max", "stddev", "paper-median", "paper-max"],
        rows,
    )
    write_artifact(
        "connection_setup", {"trials": TRIALS},
        [
            {"label": mode, "metrics": {"median_us": results[mode].median * 1e6,
                                        "p99_us": results[mode].p99 * 1e6}}
            for mode in ("standard", "failover")
        ],
        stats={mode: results[mode].as_dict() for mode in ("standard", "failover")},
    )
    std, fo = results["standard"], results["failover"]
    # Shape assertions: failover costs more, in the paper's 1.3x-2.5x band.
    ratio = fo.median / std.median
    paper_ratio = PAPER["failover"]["median_us"] / PAPER["standard"]["median_us"]
    assert 1.2 < ratio < 2.5, f"median ratio {ratio:.2f} vs paper {paper_ratio:.2f}"
    assert fo.maximum > fo.median * 1.2  # visible tail, as in the paper
    # Calibration target: the standard baseline lands near the paper.
    assert 0.7 * PAPER["standard"]["median_us"] < std.median * 1e6 < 1.3 * PAPER["standard"]["median_us"]
