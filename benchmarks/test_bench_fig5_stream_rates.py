"""E4 — Figure 5: send/receive rates for long data streams.

Paper (100 MB streams):

    |              | standard TCP | TCP Failover |
    | send rate    | 7833.70 KB/s | 5835.80 KB/s |
    | receive rate | 8707.88 KB/s | 3510.03 KB/s |

Shape: standard wins both directions; the failover *receive* direction is
the big loser (~2.5x) because every server byte crosses the shared wire
twice (S→P, then P→C) and is processed twice at the primary, while the
send direction only pays the extra acknowledgement handling (~1.34x).
"""

from benchmarks.conftest import FULL, print_table, write_artifact
from repro.harness.experiments import measure_stream_rates

PAPER = {
    "standard": {"send": 7833.70, "recv": 8707.88},
    "failover": {"send": 5835.80, "recv": 3510.03},
}

STREAM_BYTES = 100_000_000 if FULL else 8_000_000


def run_experiment():
    return {
        "standard": measure_stream_rates(total_bytes=STREAM_BYTES, replicated=False),
        "failover": measure_stream_rates(total_bytes=STREAM_BYTES, replicated=True),
    }


def test_bench_fig5_stream_rates(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for mode in ("standard", "failover"):
        rows.append(
            (
                mode,
                f"{results[mode]['send_rate_kb_s']:.0f}",
                f"{PAPER[mode]['send']:.0f}",
                f"{results[mode]['recv_rate_kb_s']:.0f}",
                f"{PAPER[mode]['recv']:.0f}",
            )
        )
    print_table(
        f"E4 / Fig 5: stream rates, {STREAM_BYTES//1_000_000} MB (KB/s)",
        ["mode", "send", "paper-send", "recv", "paper-recv"],
        rows,
    )
    write_artifact(
        "fig5_stream_rates", {"bytes": STREAM_BYTES},
        [
            {"label": mode, "metrics": {
                "send_kb_s": results[mode]["send_rate_kb_s"],
                "recv_kb_s": results[mode]["recv_rate_kb_s"]}}
            for mode in ("standard", "failover")
        ],
    )
    std, fo = results["standard"], results["failover"]
    send_ratio = std["send_rate_kb_s"] / fo["send_rate_kb_s"]
    recv_ratio = std["recv_rate_kb_s"] / fo["recv_rate_kb_s"]
    paper_send_ratio = PAPER["standard"]["send"] / PAPER["failover"]["send"]  # 1.34
    paper_recv_ratio = PAPER["standard"]["recv"] / PAPER["failover"]["recv"]  # 2.48
    # Who wins and by roughly what factor.
    assert 1.1 < send_ratio < 1.9, f"send ratio {send_ratio:.2f} (paper {paper_send_ratio:.2f})"
    assert 1.8 < recv_ratio < 3.3, f"recv ratio {recv_ratio:.2f} (paper {paper_recv_ratio:.2f})"
    # The crossover: failover hurts receive more than send.
    assert recv_ratio > send_ratio
    # Calibration: the standard baseline lands near the paper's absolutes.
    assert 0.75 * PAPER["standard"]["send"] < std["send_rate_kb_s"] < 1.25 * PAPER["standard"]["send"]
    assert 0.75 * PAPER["standard"]["recv"] < std["recv_rate_kb_s"] < 1.25 * PAPER["standard"]["recv"]
