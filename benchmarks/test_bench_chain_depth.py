"""E9 — extension: cost of daisy-chained replication depth.

The paper mentions daisy-chaining for >2-way replication (§1) without
measuring it.  This benchmark quantifies the throughput cost of each
additional replica for the worst direction (server→client, where 2-way
already pays ~2.4×): every extra link adds one more wire crossing and one
more merge on the shared segment.
"""

from benchmarks.conftest import FULL, print_table, write_artifact
from repro.harness.experiments import measure_chain_depth

STREAM = 6_000_000 if FULL else 2_500_000
DEPTHS = [1, 2, 3, 4]


def run_sweep():
    return [(depth, measure_chain_depth(depth, total_bytes=STREAM)) for depth in DEPTHS]


def test_bench_chain_depth(benchmark):
    rates = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    base = rates[0][1]
    print_table(
        "E9: server->client rate vs replication depth",
        ["replicas", "KB/s", "vs-unreplicated"],
        [(d, f"{r:.0f}", f"{base / r:.2f}x") for d, r in rates],
    )
    write_artifact(
        "chain_depth", {"bytes": STREAM},
        [{"label": f"depth-{d}", "metrics": {"rate_kb_s": r}} for d, r in rates],
    )
    # Monotone cost: every extra replica slows the stream further.
    for (_, faster), (_, slower) in zip(rates, rates[1:]):
        assert slower < faster
    # Depth 2 reproduces the Fig. 5 receive penalty (~2.2-2.8x).
    two_way = dict(rates)[2]
    assert 1.8 < base / two_way < 3.3
