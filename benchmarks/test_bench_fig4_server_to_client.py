"""E3 — Figure 4: server-to-client transfer time vs reply size.

Paper: client sends a 4-byte request; the figure plots the time until the
client has received the last byte of the reply (64 B – 1 MB), standard TCP
vs TCP Failover.  Shape: failover above standard everywhere, the gap
widening with size (every server byte crosses the shared wire twice); the
standard curve shows collision-induced non-linearity.
"""

from benchmarks.conftest import FULL, fig_sizes, print_table, write_artifact
from repro.harness.experiments import FIG4_SIZES, measure_request_reply

SIZES = fig_sizes(
    FIG4_SIZES,
    [64, 1024, 8 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024],
)
TRIALS = 9 if FULL else 5


def run_sweep():
    series = {}
    for replicated in (False, True):
        label = "failover" if replicated else "standard"
        series[label] = [
            (size, measure_request_reply(size, replicated=replicated, trials=TRIALS))
            for size in SIZES
        ]
    return series


def test_bench_fig4_server_to_client(benchmark):
    series = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = []
    bench_rows, bench_stats = [], {}
    for (size, std), (_, fo) in zip(series["standard"], series["failover"]):
        rows.append(
            (
                f"{size//1024}K" if size >= 1024 else f"{size}B",
                f"{std.median * 1e3:.2f}",
                f"{std.p99 * 1e3:.2f}",
                f"{fo.median * 1e3:.2f}",
                f"{fo.p99 * 1e3:.2f}",
                f"{fo.median / std.median:.2f}x",
            )
        )
        for mode, stats in (("standard", std), ("failover", fo)):
            label = f"{mode} {size}B"
            bench_rows.append(
                {"label": label, "metrics": {"median_ms": stats.median * 1e3}}
            )
            bench_stats[label] = stats.as_dict()
    print_table(
        "E3 / Fig 4: server->client transfer time (ms, median)",
        ["size", "standard", "std-p99", "failover", "fo-p99", "ratio"],
        rows,
    )
    write_artifact("fig4_request_reply", {"trials": TRIALS},
                   bench_rows, stats=bench_stats)
    std = dict(series["standard"])
    fo = dict(series["failover"])
    large = 1024 * 1024
    # Failover above standard at every size.
    for size in SIZES:
        assert fo[size].median >= std[size].median * 0.95
    # The large-transfer gap approaches the Fig. 5 rate ratio (~2-3x).
    ratio = fo[large].median / std[large].median
    assert 1.6 < ratio < 3.5, f"1MB ratio {ratio:.2f}"
